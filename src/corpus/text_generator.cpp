#include "corpus/text_generator.h"

#include "util/hashing.h"

namespace bf::corpus {

namespace {
// Syllable inventory chosen so 2-4 syllable compositions look like words.
constexpr const char* kOnsets[] = {"b",  "c",  "d",  "f",  "g",  "h",  "l",
                                   "m",  "n",  "p",  "r",  "s",  "t",  "v",
                                   "st", "tr", "ch", "sh", "pl", "gr"};
constexpr const char* kNuclei[] = {"a", "e", "i", "o", "u", "ai", "ea", "ou"};
constexpr const char* kCodas[] = {"",  "",  "n", "r", "s", "t",
                                  "l", "m", "nd", "st"};
}  // namespace

std::string TextGenerator::makeWord(std::uint64_t index) {
  // Deterministic word per vocabulary rank, independent of the Rng stream.
  std::uint64_t h = util::mix64(index + 0x5eedULL);
  const std::size_t syllables = 2 + (h % 3);
  std::string w;
  for (std::size_t s = 0; s < syllables; ++s) {
    h = util::mix64(h);
    w += kOnsets[h % (sizeof(kOnsets) / sizeof(kOnsets[0]))];
    h = util::mix64(h);
    w += kNuclei[h % (sizeof(kNuclei) / sizeof(kNuclei[0]))];
    h = util::mix64(h);
    w += kCodas[h % (sizeof(kCodas) / sizeof(kCodas[0]))];
  }
  return w;
}

TextGenerator::TextGenerator(util::Rng* rng, std::size_t vocabularySize)
    : rng_(rng) {
  vocab_.reserve(vocabularySize);
  for (std::size_t i = 0; i < vocabularySize; ++i) {
    vocab_.push_back(makeWord(i));
  }
}

std::string TextGenerator::word() {
  return vocab_[rng_->zipf(vocab_.size(), 1.07)];
}

std::string TextGenerator::sentence(std::size_t minWords,
                                    std::size_t maxWords) {
  const std::size_t n = rng_->uniform(minWords, maxWords);
  std::string out;
  for (std::size_t i = 0; i < n; ++i) {
    std::string w = word();
    if (i == 0 && !w.empty()) {
      w[0] = static_cast<char>(w[0] - 'a' + 'A');
    }
    if (i > 0) out += ' ';
    out += w;
    // Occasional comma, as the Readability heuristics reward them.
    if (i + 1 < n && rng_->chance(0.08)) out += ',';
  }
  out += '.';
  return out;
}

std::string TextGenerator::paragraph(std::size_t minSentences,
                                     std::size_t maxSentences) {
  const std::size_t n = rng_->uniform(minSentences, maxSentences);
  std::string out;
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0) out += ' ';
    out += sentence();
  }
  return out;
}

sec::SensitiveText TextGenerator::document(std::size_t paragraphs) {
  std::string out;
  for (std::size_t i = 0; i < paragraphs; ++i) {
    if (i > 0) out += "\n\n";
    out += paragraph();
  }
  return sec::SensitiveText(std::move(out));
}

}  // namespace bf::corpus
