#include "corpus/revision_model.h"

#include <unordered_set>

#include "util/strings.h"

namespace bf::corpus {

sec::SensitiveText Paragraph::render() const {
  std::string out;
  for (std::size_t i = 0; i < sentences.size(); ++i) {
    if (i > 0) out += ' ';
    out += sentences[i].text;
  }
  return sec::SensitiveText(std::move(out));
}

sec::SensitiveText VersionedDoc::render() const {
  std::string out;
  for (std::size_t i = 0; i < paragraphs.size(); ++i) {
    if (i > 0) out += "\n\n";
    out += paragraphs[i].render().raw();
  }
  return sec::SensitiveText(std::move(out));
}

std::size_t VersionedDoc::renderedSize() const {
  std::size_t n = 0;
  for (const auto& p : paragraphs) {
    if (n > 0) n += 2;
    n += p.render().size();
  }
  return n;
}

VolatilityProfile stableProfile() noexcept {
  // Mature articles ("Chicago", "C++"): most revisions are vandalism
  // reverts, link fixes and appends — existing sentences are almost never
  // touched, so the base version stays discoverable for hundreds of
  // revisions (paper Fig. 9a).
  VolatilityProfile p;
  p.minorEditProb = 0.0005;
  p.rephraseProb = 0.0002;
  p.deleteSentenceProb = 0.0002;
  p.insertSentenceProb = 0.0004;
  p.moveParagraphProb = 0.002;
  p.appendParagraphProb = 0.002;
  return p;
}

VolatilityProfile volatileProfile() noexcept {
  // Controversial / immature topics ("Dow Jones", "Dementia"): sections are
  // rewritten outright and the article grows and shrinks, so base-version
  // text erodes steadily (paper Fig. 9b).
  VolatilityProfile p;
  p.minorEditProb = 0.004;
  p.rephraseProb = 0.001;
  p.deleteSentenceProb = 0.002;
  p.insertSentenceProb = 0.004;
  p.rewriteParagraphProb = 0.002;
  p.moveParagraphProb = 0.01;
  p.appendParagraphProb = 0.03;
  p.deleteParagraphProb = 0.004;
  return p;
}

RevisionModel::RevisionModel(TextGenerator* gen, util::Rng* rng)
    : gen_(gen), rng_(rng) {}

Sentence RevisionModel::newSentence() {
  return Sentence{nextConcept_++, gen_->sentence()};
}

VersionedDoc RevisionModel::createDocument(std::string id,
                                           std::size_t paragraphs) {
  VersionedDoc doc;
  doc.id = std::move(id);
  doc.paragraphs.resize(paragraphs);
  for (auto& p : doc.paragraphs) {
    const std::size_t n = rng_->uniform(3, 7);
    p.sentences.reserve(n);
    for (std::size_t i = 0; i < n; ++i) p.sentences.push_back(newSentence());
  }
  return doc;
}

void RevisionModel::evolve(VersionedDoc& doc,
                           const VolatilityProfile& profile) {
  // Paragraph-wholesale rewrites (coherent block churn).
  for (auto& para : doc.paragraphs) {
    if (rng_->chance(profile.rewriteParagraphProb)) {
      const std::size_t n = rng_->uniform(3, 7);
      para.sentences.clear();
      for (std::size_t i = 0; i < n; ++i) {
        para.sentences.push_back(newSentence());
      }
    }
  }

  // Sentence-level operations.
  for (auto& para : doc.paragraphs) {
    for (std::size_t i = 0; i < para.sentences.size();) {
      Sentence& s = para.sentences[i];
      if (rng_->chance(profile.deleteSentenceProb) &&
          para.sentences.size() > 1) {
        para.sentences.erase(para.sentences.begin() +
                             static_cast<std::ptrdiff_t>(i));
        continue;  // do not ++i
      }
      if (rng_->chance(profile.rephraseProb)) {
        // Same concept, entirely new words: the human expert still sees the
        // idea; the fingerprint does not.
        s.text = gen_->sentence();
      } else if (rng_->chance(profile.minorEditProb)) {
        // Replace one word in place (typo fix / small copy-edit).
        auto words = util::splitWords(s.text);
        if (!words.empty()) {
          const std::size_t k =
              static_cast<std::size_t>(rng_->uniform(0, words.size() - 1));
          std::string rebuilt;
          for (std::size_t w = 0; w < words.size(); ++w) {
            if (w > 0) rebuilt += ' ';
            rebuilt += (w == k) ? gen_->word() : std::string(words[w]);
          }
          s.text = rebuilt;
        }
      }
      if (rng_->chance(profile.insertSentenceProb)) {
        para.sentences.insert(
            para.sentences.begin() + static_cast<std::ptrdiff_t>(i) + 1,
            newSentence());
        ++i;  // skip over the inserted sentence
      }
      ++i;
    }
  }

  // Paragraph-level operations.
  if (doc.paragraphs.size() > 1 && rng_->chance(profile.moveParagraphProb)) {
    const std::size_t from =
        static_cast<std::size_t>(rng_->uniform(0, doc.paragraphs.size() - 1));
    const std::size_t to =
        static_cast<std::size_t>(rng_->uniform(0, doc.paragraphs.size() - 1));
    if (from != to) {
      Paragraph moved = std::move(doc.paragraphs[from]);
      doc.paragraphs.erase(doc.paragraphs.begin() +
                           static_cast<std::ptrdiff_t>(from));
      doc.paragraphs.insert(
          doc.paragraphs.begin() + static_cast<std::ptrdiff_t>(to),
          std::move(moved));
    }
  }
  if (rng_->chance(profile.appendParagraphProb)) {
    Paragraph p;
    const std::size_t n = rng_->uniform(3, 7);
    for (std::size_t i = 0; i < n; ++i) p.sentences.push_back(newSentence());
    doc.paragraphs.push_back(std::move(p));
  }
  if (doc.paragraphs.size() > 2 && rng_->chance(profile.deleteParagraphProb)) {
    const std::size_t k =
        static_cast<std::size_t>(rng_->uniform(0, doc.paragraphs.size() - 1));
    doc.paragraphs.erase(doc.paragraphs.begin() +
                         static_cast<std::ptrdiff_t>(k));
  }
}

void RevisionModel::evolve(VersionedDoc& doc, const VolatilityProfile& profile,
                           std::size_t steps) {
  for (std::size_t i = 0; i < steps; ++i) evolve(doc, profile);
}

double conceptSurvival(const Paragraph& base, const VersionedDoc& current) {
  if (base.sentences.empty()) return 0.0;
  std::unordered_set<std::uint64_t> live;
  for (const auto& para : current.paragraphs) {
    for (const auto& s : para.sentences) live.insert(s.conceptId);
  }
  std::size_t survived = 0;
  for (const auto& s : base.sentences) {
    if (live.count(s.conceptId) != 0) ++survived;
  }
  return static_cast<double>(survived) /
         static_cast<double>(base.sentences.size());
}

bool groundTruthDiscloses(const Paragraph& base, const VersionedDoc& current,
                          double survivalThreshold) {
  const double s = conceptSurvival(base, current);
  return s > 0.0 && s >= survivalThreshold;
}

}  // namespace bf::corpus
