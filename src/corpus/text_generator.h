// Synthetic text generation.
//
// The paper evaluates on Wikipedia dumps, vendor manuals and Project
// Gutenberg e-books, none of which are available offline. The generator
// produces English-shaped prose from a seeded pseudo-word vocabulary with a
// Zipf rank-frequency distribution (like natural language), so fingerprint
// density, n-gram collision rates and paragraph lengths behave like real
// text. All output is a deterministic function of the Rng seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sec/sensitive.h"
#include "util/rng.h"

namespace bf::corpus {

class TextGenerator {
 public:
  /// `rng` is not owned and must outlive the generator.
  explicit TextGenerator(util::Rng* rng, std::size_t vocabularySize = 20000);

  /// One vocabulary word, Zipf-sampled (common words repeat often).
  [[nodiscard]] std::string word();

  /// A sentence of `minWords`..`maxWords` words, capitalised, full stop.
  [[nodiscard]] std::string sentence(std::size_t minWords = 8,
                                     std::size_t maxWords = 18);

  /// A paragraph of `minSentences`..`maxSentences` sentences.
  [[nodiscard]] std::string paragraph(std::size_t minSentences = 3,
                                      std::size_t maxSentences = 7);

  /// A document of `paragraphs` paragraphs separated by blank lines.
  /// Documents model user content entering the pipeline, so the rendering
  /// is sensitive by type (words/sentences/paragraphs stay plain — they
  /// are building blocks, not documents).
  [[nodiscard]] sec::SensitiveText document(std::size_t paragraphs);

  [[nodiscard]] std::size_t vocabularySize() const noexcept {
    return vocab_.size();
  }

 private:
  [[nodiscard]] static std::string makeWord(std::uint64_t index);

  util::Rng* rng_;
  std::vector<std::string> vocab_;
};

}  // namespace bf::corpus
