// Dataset builders mirroring the paper's Table 1.
//
//   Dataset    Documents  Versions  Paragraphs  Size(KB)
//   Wikipedia  100        1000      60          30
//   Manuals    4 chapters 4         8-40        3.3-6.1
//   News       2          -         27          5.5
//   Ebooks     180        1         1500        470 (90 MB total)
//
// Every builder is a deterministic function of its config (including the
// seed). Paper-scale configs regenerate the full sizes; quick-scale configs
// keep unit tests and default bench runs fast on one core.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "corpus/revision_model.h"

namespace bf::corpus {

// ---- Wikipedia-like revision corpus (Figs. 8, 9) ----------------------------

struct WikipediaConfig {
  std::uint64_t seed = 42;
  std::size_t articles = 100;
  std::size_t revisions = 1000;
  /// Store a document snapshot every `checkpointInterval` revisions
  /// (the oldest revision is always checkpoint 0).
  std::size_t checkpointInterval = 50;
  /// Fraction of articles that follow the volatile profile ("controversial
  /// or less mature topics"); the rest are stable ("Chicago", "C++").
  double volatileFraction = 0.5;
  std::size_t minParagraphs = 40;
  std::size_t maxParagraphs = 80;

  /// Paper-scale corpus (Table 1 row 1).
  [[nodiscard]] static WikipediaConfig paperScale() { return {}; }
  /// Reduced corpus for tests and default bench runs.
  [[nodiscard]] static WikipediaConfig quickScale() {
    WikipediaConfig c;
    c.articles = 12;
    c.revisions = 200;
    c.checkpointInterval = 20;
    c.minParagraphs = 12;
    c.maxParagraphs = 24;
    return c;
  }
};

struct WikipediaArticle {
  std::string title;
  bool isVolatile = false;
  /// Snapshots of the article; checkpoints[0] is the base (oldest) version.
  std::vector<VersionedDoc> checkpoints;
  /// checkpointRevision[i] = how many revisions checkpoints[i] is away from
  /// the base version (the x-axis of Fig. 9).
  std::vector<std::size_t> checkpointRevision;
};

struct WikipediaDataset {
  WikipediaConfig config;
  std::vector<WikipediaArticle> articles;
};

[[nodiscard]] WikipediaDataset buildWikipedia(const WikipediaConfig& config);

// ---- Manuals-like versioned chapters (Figs. 10, 11) -------------------------

struct ManualChapter {
  /// e.g. "IPhone Camera".
  std::string name;
  /// Version labels, e.g. {"iOS3", "iOS4", "iOS5", "iOS7"}.
  std::vector<std::string> versionNames;
  /// versions[0] is the base; versions[i] evolved from versions[i-1].
  std::vector<VersionedDoc> versions;
};

struct ManualsDataset {
  std::vector<ManualChapter> chapters;
};

/// Builds the four chapters of Table 1 with change dynamics shaped like
/// Fig. 10: both iPhone chapters change significantly version over version;
/// "MySQL New Features" drops after its second version; "What's MySQL"
/// stays essentially unchanged.
[[nodiscard]] ManualsDataset buildManuals(std::uint64_t seed = 43);

// ---- News articles (Table 1 only) -------------------------------------------

struct NewsDataset {
  std::vector<VersionedDoc> articles;
};

[[nodiscard]] NewsDataset buildNews(std::uint64_t seed = 44);

// ---- E-books (Figs. 12, 13) --------------------------------------------------

struct EbooksConfig {
  std::uint64_t seed = 45;
  std::size_t books = 180;
  std::size_t minParagraphsPerBook = 450;
  std::size_t maxParagraphsPerBook = 1000;

  [[nodiscard]] static EbooksConfig paperScale() { return {}; }
  [[nodiscard]] static EbooksConfig quickScale() {
    EbooksConfig c;
    c.books = 12;
    c.minParagraphsPerBook = 120;
    c.maxParagraphsPerBook = 260;
    return c;
  }
};

struct EbooksDataset {
  EbooksConfig config;
  std::vector<VersionedDoc> books;
  std::size_t totalBytes = 0;
};

[[nodiscard]] EbooksDataset buildEbooks(const EbooksConfig& config);

// ---- Table 1 statistics -------------------------------------------------------

struct DatasetStats {
  std::string name;
  std::size_t documents = 0;
  std::size_t versions = 0;
  double avgParagraphs = 0.0;
  double avgSizeKb = 0.0;
};

[[nodiscard]] DatasetStats statsOf(const WikipediaDataset& ds);
[[nodiscard]] std::vector<DatasetStats> statsOf(const ManualsDataset& ds);
[[nodiscard]] DatasetStats statsOf(const NewsDataset& ds);
[[nodiscard]] DatasetStats statsOf(const EbooksDataset& ds);

}  // namespace bf::corpus
