// Service adapters — per-service transformation of upload payloads to text
// segments (paper S4.4):
//
// "While many services used for document editing ... have the concept of
//  documents and paragraphs, some services do not. They may be supported
//  by BrowserFlow if there is a service-specific transformation of the
//  service's data to text segments."
//
// An adapter knows how to pull user text out of an outgoing request body
// and how to write (possibly rewritten, e.g. sealed) text back into it.
// The plug-in ships two generic adapters — urlencoded form bodies and JSON
// bodies — and services with bespoke wire formats register their own.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "browser/http.h"
#include "sec/sensitive.h"

namespace bf::core {

/// One user-text unit extracted from a request. The field VALUE is raw
/// user content and therefore sensitive by type; the key is wire metadata.
struct UploadField {
  /// Identifier within the body (form key, JSON key, ...).
  std::string key;
  sec::SensitiveText text;
};

class ServiceAdapter {
 public:
  virtual ~ServiceAdapter() = default;

  /// Extracts the user-text fields from an outgoing request. Returning an
  /// empty vector means "no user text here" and the request passes
  /// untouched.
  [[nodiscard]] virtual std::vector<UploadField> extractUploadText(
      const browser::HttpRequest& request) const = 0;

  /// Rebuilds the request body with the given (rewritten) fields. Fields
  /// must be those returned by extractUploadText, in order, with only
  /// their `text` changed.
  [[nodiscard]] virtual std::string rebuildBody(
      const browser::HttpRequest& request,
      const std::vector<UploadField>& fields) const = 0;
};

/// application/x-www-form-urlencoded bodies; text is taken from the
/// conventional user-content keys (text, content, body, message, comment,
/// value).
class FormEncodedAdapter final : public ServiceAdapter {
 public:
  [[nodiscard]] std::vector<UploadField> extractUploadText(
      const browser::HttpRequest& request) const override;
  [[nodiscard]] std::string rebuildBody(
      const browser::HttpRequest& request,
      const std::vector<UploadField>& fields) const override;
};

/// JSON bodies: string values of the configured keys (at any nesting
/// depth) are user text. With no keys configured, the same conventional
/// user-content keys as the form adapter apply.
class JsonFieldAdapter final : public ServiceAdapter {
 public:
  explicit JsonFieldAdapter(std::vector<std::string> textKeys = {});
  [[nodiscard]] std::vector<UploadField> extractUploadText(
      const browser::HttpRequest& request) const override;
  [[nodiscard]] std::string rebuildBody(
      const browser::HttpRequest& request,
      const std::vector<UploadField>& fields) const override;

 private:
  [[nodiscard]] bool isTextKey(const std::string& key) const;
  std::vector<std::string> textKeys_;
};

/// True for the conventional user-content field names shared by the
/// generic adapters.
[[nodiscard]] bool isConventionalTextField(const std::string& key);

}  // namespace bf::core
