#include "core/plugin.h"

#include <algorithm>

#include "browser/forms.h"
#include "browser/readability.h"
#include "obs/metrics.h"
#include "obs/stage.h"
#include "obs/trace.h"
#include "obs/trace_context.h"
#include "text/segmenter.h"
#include "util/hashing.h"
#include "util/json_text.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/strings.h"

namespace bf::core {

BrowserFlowPlugin::BrowserFlowPlugin(BrowserFlowConfig config,
                                     util::Clock* clock)
    : config_(std::move(config)),
      clock_(clock),
      tracker_(config_.tracker, clock_),
      policy_(clock_),
      engine_(config_, &tracker_, &policy_),
      sealer_(config_.orgSecret) {
  engine_.setSecretGuard(&secretGuard_);
}

BrowserFlowPlugin::~BrowserFlowPlugin() = default;

void BrowserFlowPlugin::onPageCreated(browser::Page& page) {
  static obs::Counter& pagesCounter = obs::registry().counter(
      "bf_plugin_pages_total", "Tabs instrumented by the plug-in");
  pagesCounter.inc();
  auto hooks = std::make_unique<PageHooks>();
  hooks->page = &page;
  PageHooks* raw = hooks.get();
  hooks->observer = std::make_unique<browser::MutationObserver>(
      [this, raw](const std::vector<browser::MutationRecord>& records) {
        handleMutations(*raw, records);
      });
  hooks->observer->observe(page.document().root());
  page.registerObserver(hooks->observer.get());
  installXhrInterceptor(page);
  hooks_.push_back(std::move(hooks));
}

void BrowserFlowPlugin::onPageClosing(browser::Page& page) {
  auto it = std::find_if(
      hooks_.begin(), hooks_.end(),
      [&](const std::unique_ptr<PageHooks>& h) { return h->page == &page; });
  if (it == hooks_.end()) return;
  page.unregisterObserver((*it)->observer.get());
  // Tracked segments persist — the document still exists in the cloud
  // service; only the tab closed.
  hooks_.erase(it);
}

browser::Node* BrowserFlowPlugin::paragraphContainerOf(browser::Node* node) {
  for (browser::Node* n = node; n != nullptr; n = n->parent()) {
    if (!n->isElement()) continue;
    if (n->tag() == "p") return n;
    if (util::containsIgnoreCase(n->className(), "docs-paragraph")) return n;
  }
  return nullptr;
}

void BrowserFlowPlugin::handleMutations(
    PageHooks& hooks, const std::vector<browser::MutationRecord>& records) {
  hookNewForms(hooks);

  std::vector<browser::Node*> dirty;
  bool removedTracked = false;
  auto markDirty = [&](browser::Node* p) {
    if (p != nullptr && std::find(dirty.begin(), dirty.end(), p) == dirty.end()) {
      dirty.push_back(p);
    }
  };

  for (const auto& rec : records) {
    if (rec.type == browser::MutationType::kCharacterData) {
      markDirty(paragraphContainerOf(rec.target));
      continue;
    }
    for (browser::Node* added : rec.addedNodes) {
      // The added subtree may itself contain paragraph containers.
      if (!added->isElement()) {
        markDirty(paragraphContainerOf(added));
        continue;
      }
      added->forEachNode([&](browser::Node& n) {
        if (n.isElement() && paragraphContainerOf(&n) == &n) markDirty(&n);
      });
    }
    for (browser::Node* removed : rec.removedNodes) {
      // NOTE: removed pointers are used only as map keys — the node may
      // already be destroyed by the time records are flushed.
      auto it = hooks.paragraphNames.find(removed);
      if (it != hooks.paragraphNames.end()) {
        const auto removalLock = engine_.lockState();
        tracker_.removeSegmentByName(it->second);
        policy_.forgetSegment(it->second);
        hooks.paragraphNames.erase(it);
        removedTracked = true;
      }
    }
  }

  // Removals also change the document's content, so they refresh the
  // document segment below even with no dirty paragraphs.
  if (dirty.empty() && !removedTracked) return;
  for (browser::Node* p : dirty) checkParagraphNode(hooks, p);

  // Refresh the document-granularity segment (paper S4.1 tracks both) and
  // run the document-level disclosure check: individually innocuous
  // paragraphs can cumulatively disclose a whole document ("one sentence
  // from each paragraph").
  std::string docText;
  hooks.page->document().root()->forEachNode([&](browser::Node& n) {
    if (n.isElement() && paragraphContainerOf(&n) == &n) {
      if (!docText.empty()) docText += "\n\n";
      docText += n.textContent();
    }
  });
  const std::string& url = hooks.page->url();
  DecisionRequest docReq;
  docReq.segmentName = url;
  docReq.documentName = url;
  docReq.serviceId = hooks.page->origin();
  docReq.text = std::move(docText);
  docReq.kind = flow::SegmentKind::kDocument;
  docReq.trace = obs::ingressTrace();
  docReq.ingress = "plugin.document";
  if (config_.asyncParagraphChecks) {
    hooks.pendingDocs.push_back(engine_.decideAsync(std::move(docReq)));
  } else {
    const Decision d = engine_.decide(docReq);
    if (d.violation()) recordViolation(url, docReq.serviceId, d, docReq.text);
  }
}

Decision BrowserFlowPlugin::checkParagraphNode(PageHooks& hooks,
                                               browser::Node* paragraph) {
  // Ingress point: the mutation path is where a decision's causal story
  // starts, so the trace context is created before the span that uses it.
  const obs::TraceContext trace = obs::ingressTrace();
  obs::ScopedTraceContext traceScope(trace);
  obs::ScopedSpan span("plugin.paragraph_check");
  static obs::Counter& checksCounter = obs::registry().counter(
      "bf_plugin_paragraph_checks_total",
      "Paragraph decisions triggered by DOM mutations");
  checksCounter.inc();
  auto it = hooks.paragraphNames.find(paragraph);
  if (it == hooks.paragraphNames.end()) {
    std::string name =
        hooks.page->url() + "#n" + std::to_string(hooks.nextNodeId++);
    it = hooks.paragraphNames.emplace(paragraph, std::move(name)).first;
  }
  DecisionRequest req;
  req.segmentName = it->second;
  req.documentName = hooks.page->url();
  req.serviceId = hooks.page->origin();
  req.text = paragraph->textContent();
  req.trace = trace;
  req.ingress = "plugin.paragraph";
  span.addAttr("doc", util::fnv1a64(req.documentName));
  span.addAttr("origin", util::fnv1a64(req.serviceId));
  span.addAttr("bytes", req.text.size());

  if (config_.asyncParagraphChecks) {
    // Paper S6.2: the user keeps typing; the decision arrives off the main
    // path and the highlight is applied at the next idle point.
    hooks.pending.emplace_back(paragraph, engine_.decideAsync(req));
    return Decision{};
  }
  const Decision d = engine_.decide(req);
  applyParagraphDecision(paragraph, req.segmentName, req.serviceId, d);
  return d;
}

void BrowserFlowPlugin::applyParagraphDecision(browser::Node* paragraph,
                                               const std::string& segmentName,
                                               const std::string& serviceId,
                                               const Decision& d) {
  // Surface the result the way the paper's plug-in does: by changing the
  // paragraph's background colour while it discloses sensitive data.
  paragraph->setAttribute(kStateAttr, d.violation() ? kViolation : kClean);
  paragraph->setAttribute(
      "style", d.violation() ? "background-color:#ffd6d6" : "");
  if (d.violation()) {
    recordViolation(segmentName, serviceId, d, paragraph->textContent());
  }
}

void BrowserFlowPlugin::drainPendingDecisions() {
  engine_.drain();
  for (auto& hooks : hooks_) {
    for (auto& [paragraph, future] : hooks->pending) {
      // The node may have been deleted while the decision was in flight.
      auto it = hooks->paragraphNames.find(paragraph);
      if (it == hooks->paragraphNames.end()) {
        (void)future.get();
        continue;
      }
      applyParagraphDecision(paragraph, it->second, hooks->page->origin(),
                             future.get());
    }
    hooks->pending.clear();
    for (auto& future : hooks->pendingDocs) {
      const Decision d = future.get();
      if (d.violation()) {
        // Content is no longer in flight here; the preview is empty rather
        // than re-reading the (possibly changed) DOM.
        recordViolation(hooks->page->url(), hooks->page->origin(), d, "");
      }
    }
    hooks->pendingDocs.clear();
  }
}

void BrowserFlowPlugin::hookNewForms(PageHooks& hooks) {
  std::vector<browser::Node*> forms =
      hooks.page->document().root()->elementsByTag("form");
  for (browser::Node* form : forms) {
    if (hooks.hookedForms.insert(form).second) {
      installFormListener(hooks, form);
    }
  }
}

void BrowserFlowPlugin::installFormListener(PageHooks& hooks,
                                            browser::Node* form) {
  PageHooks* raw = &hooks;
  raw->page->addSubmitListener(form, [this, raw, form](
                                         browser::SubmitEvent& event) {
    browser::Page& page = *raw->page;
    // "inspects all non-hidden <input> elements in the form and extracts
    //  their value attributes" (S5.1).
    const std::vector<browser::Node*> inputs = browser::nonHiddenInputs(form);
    std::string combined;
    for (browser::Node* input : inputs) {
      const std::string v = input->attribute("value");
      if (v.empty()) continue;
      if (!combined.empty()) combined += "\n\n";
      combined += v;
    }
    if (combined.empty()) return;  // nothing to check

    static obs::Counter& formsCounter = obs::registry().counter(
        "bf_plugin_form_submissions_total",
        "Form submissions intercepted with user text");
    formsCounter.inc();
    const Decision d = decideFormDraft(page, combined);
    if (!d.violation()) {
      return;  // default submission proceeds; drafts are already tracked
    }

    recordViolation(page.url() + "/draft", page.origin(), d, combined);
    const std::string preview = sec::redact(combined).text;
    switch (config_.mode) {
      case EnforcementMode::kWarn:
        // Advisory model: surface the warning, let the upload proceed.
        break;
      case EnforcementMode::kBlock:
        event.preventDefault();
        policy_.audit().append(
            {tdm::AuditRecord::Kind::kUploadBlocked, clock_->now(), "",
             tdm::Tag{}, page.url() + "/form", page.origin(), preview});
        break;
      case EnforcementMode::kEncrypt:
        // Seal every non-hidden value; the default submission then carries
        // ciphertext only.
        for (browser::Node* input : inputs) {
          const std::string v = input->attribute("value");
          if (!v.empty()) input->setAttribute("value", sealer_.seal(v));
        }
        policy_.audit().append(
            {tdm::AuditRecord::Kind::kUploadEncrypted, clock_->now(), "",
             tdm::Tag{}, page.url() + "/form", page.origin(), preview});
        break;
    }
  });
}

void BrowserFlowPlugin::registerServiceAdapter(
    const std::string& origin, std::unique_ptr<ServiceAdapter> adapter) {
  adapters_[origin] = std::move(adapter);
}

const ServiceAdapter& BrowserFlowPlugin::adapterFor(
    const std::string& origin, const browser::HttpRequest& request) const {
  auto it = adapters_.find(origin);
  if (it != adapters_.end()) return *it->second;
  if (util::looksLikeJson(request.body)) return jsonAdapter_;
  return formAdapter_;
}

void BrowserFlowPlugin::installXhrInterceptor(browser::Page& page) {
  // "BrowserFlow sets a custom XMLHttpRequest.prototype.send method,
  //  exposing an interception point to observe all HTTP requests" (S5.2).
  auto original = page.xhrPrototype().send;
  browser::Page* pagePtr = &page;
  page.xhrPrototype().send =
      [this, pagePtr, original](browser::Xhr& xhr,
                                const browser::HttpRequest& req)
      -> browser::HttpResponse {
    const ServiceAdapter& adapter = adapterFor(pagePtr->origin(), req);
    std::vector<UploadField> fields = adapter.extractUploadText(req);
    if (fields.empty()) return original(xhr, req);  // no user text
    static obs::Counter& xhrCounter = obs::registry().counter(
        "bf_plugin_xhr_uploads_total", "XHR uploads intercepted with user text");
    xhrCounter.inc();
    // One trace spans the whole intercepted upload; the per-field checks
    // below branch child spans off it.
    const obs::TraceContext trace = obs::ingressTrace();
    obs::ScopedTraceContext traceScope(trace);

    bool anyViolation = false;
    std::vector<bool> violates(fields.size(), false);
    for (std::size_t i = 0; i < fields.size(); ++i) {
      Decision d =
          decideUploadText(fields[i].text, pagePtr->url(), pagePtr->origin());
      if (d.violation()) {
        anyViolation = true;
        violates[i] = true;
        recordViolation(pagePtr->url() + "/xhr", pagePtr->origin(), d,
                        fields[i].text);
      }
    }
    // Cumulative document-level check: the page's document segment (kept
    // fresh by the mutation path) may violate even when the single
    // uploaded paragraph does not.
    if (!anyViolation &&
        policy_.labelOf(pagePtr->url()) != nullptr) {
      obs::StageBreakdown docStages;
      tdm::UploadDecision docCheck;
      {
        obs::ScopedStageCollector docCollector(&docStages);
        obs::StageTimer policyTimer(obs::Stage::kPolicyEval);
        const auto stateLock = engine_.lockState();
        docCheck = policy_.checkUpload(pagePtr->url(), pagePtr->origin());
      }
      if (!docCheck.allowed) {
        anyViolation = true;
        Decision d;
        d.violatingTags = docCheck.violatingTags;
        d.action = config_.mode == EnforcementMode::kBlock
                       ? Decision::Action::kBlock
                   : config_.mode == EnforcementMode::kEncrypt
                       ? Decision::Action::kEncrypt
                       : Decision::Action::kWarn;
        recordDecisionProvenance("plugin.upload_document", pagePtr->url(),
                                 pagePtr->url(), pagePtr->origin(),
                                 req.body, obs::ingressTrace(),
                                 docStages, d);
        recordViolation(pagePtr->url() + "/xhr(document)", pagePtr->origin(),
                        d, req.body);
      }
    }
    if (!anyViolation) return original(xhr, req);

    switch (config_.mode) {
      case EnforcementMode::kWarn:
        return original(xhr, req);
      case EnforcementMode::kBlock:
        policy_.audit().append(
            {tdm::AuditRecord::Kind::kUploadBlocked, clock_->now(), "",
             tdm::Tag{}, pagePtr->url() + "/xhr", pagePtr->origin(),
             sec::redact(req.body).text});
        return {403, "BrowserFlow: upload blocked by data disclosure policy"};
      case EnforcementMode::kEncrypt: {
        for (std::size_t i = 0; i < fields.size(); ++i) {
          if (violates[i]) fields[i].text = sealer_.seal(fields[i].text);
        }
        browser::HttpRequest sealed = req;
        sealed.body = adapter.rebuildBody(req, fields);
        policy_.audit().append(
            {tdm::AuditRecord::Kind::kUploadEncrypted, clock_->now(), "",
             tdm::Tag{}, pagePtr->url() + "/xhr", pagePtr->origin(),
             sec::redact(req.body).text});
        return original(xhr, sealed);
      }
    }
    return original(xhr, req);
  };
}

namespace {

/// Merges hits/tags of a sub-check into the aggregate decision.
void mergeInto(Decision& total, std::vector<flow::DisclosureHit> hits,
               std::vector<tdm::Tag> tags, bool violated) {
  for (auto& h : hits) total.hits.push_back(std::move(h));
  if (violated) {
    for (auto& t : tags) {
      if (std::find(total.violatingTags.begin(), total.violatingTags.end(),
                    t) == total.violatingTags.end()) {
        total.violatingTags.push_back(std::move(t));
      }
    }
  }
}

}  // namespace

Decision BrowserFlowPlugin::decideUploadText(sec::SensitiveView text,
                                             const std::string& documentName,
                                             const std::string& serviceId) {
  // This path bypasses engine_.decide(), so it builds its own provenance:
  // trace context, stage breakdown, and flight-recorder record.
  const obs::TraceContext trace = obs::ingressTrace();
  obs::ScopedTraceContext traceScope(trace);
  obs::StageBreakdown stages;
  obs::ScopedStageCollector stageScope(&stages);
  obs::ScopedSpan span("plugin.upload_check");
  span.addAttr("doc", util::fnv1a64(documentName));
  span.addAttr("origin", util::fnv1a64(serviceId));
  span.addAttr("bytes", text.size());
  util::Stopwatch watch;
  Decision decision;
  bool violated = false;
  {
    // Reads the tracker/policy directly (no engine_.decide call), so it
    // must serialise with the async decision worker.
    const auto stateLock = engine_.lockState();

    // Checks one granularity of one text unit.
    auto checkUnit = [&](sec::SensitiveView unit, flow::SegmentKind kind) {
      text::Fingerprint fp;
      {
        obs::StageTimer fpTimer(obs::Stage::kFingerprint);
        fp = tracker_.fingerprintOf(unit);
      }
      std::vector<flow::DisclosureHit> hits = tracker_.disclosedSources(
          fp, kind, flow::kInvalidSegment, documentName);

      obs::StageTimer policyTimer(obs::Stage::kPolicyEval);
      tdm::UploadDecision check;
      if (const std::optional<flow::SegmentRecord> seg =
              tracker_.findSegmentWithFingerprint(documentName, fp, kind)) {
        // The outgoing text is a tracked segment of this document: its
        // registered label (implicit tags, user suppressions) decides.
        check = policy_.checkUpload(seg->name, serviceId);
      } else {
        // Unregistered text: synthesize the label — the disclosing sources'
        // explicit tags as implicit, plus the destination's Lc for text
        // being created there.
        tdm::Label label;
        for (const auto& hit : hits) {
          const tdm::Label* src = policy_.labelOf(hit.sourceName);
          if (src != nullptr) label.addImplicitAll(src->propagatableTags());
        }
        if (const tdm::ServiceInfo* svc = policy_.services().find(serviceId)) {
          for (const tdm::Tag& t : svc->confidentiality) label.addExplicit(t);
        }
        // Exact-match pass for short secrets (S4.4).
        for (const auto& secretHit : secretGuard_.scan(unit)) {
          label.addImplicit(secretHit.tag);
          decision.secretHits.push_back(secretHit.name);
        }
        check = policy_.checkLabel(label, serviceId);
      }
      if (!check.allowed) violated = true;
      mergeInto(decision, std::move(hits), std::move(check.violatingTags),
                !check.allowed);
    };

    // Paragraph granularity: each paragraph of the upload individually.
    const auto paragraphs = text::segmentParagraphs(text.raw());
    for (const auto& para : paragraphs) {
      checkUnit(para.text, flow::SegmentKind::kParagraph);
    }
    // Document granularity for multi-paragraph uploads: catches "one
    // sentence from each paragraph" aggregation leaks (paper S4.1).
    if (paragraphs.size() > 1) {
      checkUnit(text, flow::SegmentKind::kDocument);
    }
  }

  decision.action =
      !violated ? Decision::Action::kAllow
      : config_.mode == EnforcementMode::kBlock   ? Decision::Action::kBlock
      : config_.mode == EnforcementMode::kEncrypt ? Decision::Action::kEncrypt
                                                  : Decision::Action::kWarn;
  decision.responseTimeMs = watch.elapsedMillis();
  span.addAttr("segments_matched", decision.hits.size());
  recordDecisionProvenance("plugin.upload", documentName + "#upload",
                           documentName, serviceId, text, trace, stages,
                           decision);
  return decision;
}

Decision BrowserFlowPlugin::decideFormDraft(browser::Page& page,
                                            sec::SensitiveView text) {
  // One ingress trace covers the whole draft; every per-paragraph decide
  // below inherits it (the engine adopts the ambient trace as parent).
  const obs::TraceContext trace = obs::ingressTrace();
  obs::ScopedTraceContext traceScope(trace);
  const std::string draftDoc = page.url() + "/draft";
  const std::string service = page.origin();
  Decision decision;
  bool violated = false;

  // Each paragraph of the draft runs the full engine pipeline: it is
  // observed as a segment of this service (Lc assignment), disclosure is
  // looked up, implicit tags refresh, and the flow rule is checked.
  const auto paragraphs = text::segmentParagraphs(text.raw());
  for (const auto& para : paragraphs) {
    DecisionRequest req;
    req.segmentName = draftDoc + "#p" + std::to_string(para.index);
    req.documentName = draftDoc;
    req.serviceId = service;
    req.text = para.text;
    req.kind = flow::SegmentKind::kParagraph;
    req.ingress = "plugin.form";
    Decision d = engine_.decide(req);
    if (d.violation()) violated = true;
    mergeInto(decision, std::move(d.hits), std::move(d.violatingTags),
              d.violation());
  }

  // Prune paragraphs left over from an earlier, longer draft.
  for (std::size_t i = paragraphs.size();; ++i) {
    const std::string name = draftDoc + "#p" + std::to_string(i);
    if (tracker_.segmentByName(name) == nullptr) break;
    tracker_.removeSegmentByName(name);
    policy_.forgetSegment(name);
  }

  // Document granularity.
  if (paragraphs.size() > 1) {
    DecisionRequest req;
    req.segmentName = draftDoc;
    req.documentName = draftDoc;
    req.serviceId = service;
    req.text = sec::SensitiveText(text);
    req.kind = flow::SegmentKind::kDocument;
    req.ingress = "plugin.form";
    Decision d = engine_.decide(req);
    if (d.violation()) violated = true;
    mergeInto(decision, std::move(d.hits), std::move(d.violatingTags),
              d.violation());
  }

  decision.action =
      !violated ? Decision::Action::kAllow
      : config_.mode == EnforcementMode::kBlock   ? Decision::Action::kBlock
      : config_.mode == EnforcementMode::kEncrypt ? Decision::Action::kEncrypt
                                                  : Decision::Action::kWarn;
  return decision;
}

void BrowserFlowPlugin::recordViolation(const std::string& segmentName,
                                        const std::string& serviceId,
                                        const Decision& d,
                                        sec::SensitiveView content) {
  static obs::Counter& violationsCounter = obs::registry().counter(
      "bf_plugin_violations_total",
      "Violations surfaced to the user (warn/block/encrypt)");
  violationsCounter.inc();
  // Only the redacted preview crosses into the audit trail; redact() is a
  // declassification gate (first/last few chars + length, DESIGN.md §14).
  policy_.audit().append({tdm::AuditRecord::Kind::kViolationWarned,
                          clock_->now(), "", tdm::Tag{}, segmentName,
                          serviceId, sec::redact(content).text});
  warnings_.push_back(Warning{segmentName, serviceId, d});
  BF_LOG(util::LogLevel::kInfo, "browserflow")
      << "violation: segment " << segmentName << " -> " << serviceId;
}

void BrowserFlowPlugin::scanPage(browser::Page& page) {
  const browser::ExtractionResult extracted =
      browser::extractMainText(*page.document().root());
  if (extracted.text.empty()) return;
  observeServiceDocument(page.origin(), page.url(), extracted.text);
}

void BrowserFlowPlugin::observeServiceDocument(
    const std::string& serviceId, const std::string& docName,
    sec::SensitiveView text, std::optional<double> paragraphThreshold,
    std::optional<double> documentThreshold) {
  const auto stateLock = engine_.lockState();
  auto obs = tracker_.observeDocument(docName, serviceId, text,
                                      paragraphThreshold, documentThreshold);
  policy_.onSegmentObserved(docName, serviceId);
  for (flow::SegmentId pid : obs.paragraphs) {
    const flow::SegmentRecord* rec = tracker_.segment(pid);
    if (rec != nullptr) policy_.onSegmentObserved(rec->name, serviceId);
  }
}

util::Status BrowserFlowPlugin::suppressTag(const std::string& user,
                                            const std::string& segmentName,
                                            const tdm::Tag& tag,
                                            const std::string& justification) {
  const auto stateLock = engine_.lockState();
  util::Status status =
      policy_.suppressTag(user, segmentName, tag, justification);
  if (!status.ok()) return status;
  // Both granularities are checked on upload (paper S4.1); a paragraph
  // declassification extends to the containing document segment so the
  // document-level check does not silently re-block the same tag.
  const std::size_t hash = segmentName.rfind('#');
  if (hash != std::string::npos) {
    const std::string docName = segmentName.substr(0, hash);
    if (policy_.labelOf(docName) != nullptr) {
      // Best-effort: the tag may not be active at document level.
      (void)policy_.suppressTag(user, docName, tag,
                                justification + " (document granularity)");
    }
  }
  return status;
}

std::string BrowserFlowPlugin::segmentNameOf(browser::Node* paragraph) const {
  for (const auto& hooks : hooks_) {
    auto it = hooks->paragraphNames.find(paragraph);
    if (it != hooks->paragraphNames.end()) return it->second;
  }
  return {};
}

}  // namespace bf::core
