// SecretGuard — exact-match protection for short sensitive strings.
//
// The paper concedes that imprecise tracking cannot protect text shorter
// than a fingerprinting window: "Short but sensitive text ... is typically
// only relevant ... in specific scenarios, e.g. when the text is used as a
// password. For such specific use cases, for example password reuse
// prevention, specialised systems which rely on data equality only are
// more effective." (S4.4)
//
// SecretGuard is that specialised system, integrated: administrators
// register short secrets (passwords, API keys, account numbers); every
// outgoing text is scanned with one Aho-Corasick pass over its normalized
// form, so matching is insensitive to case, spacing and punctuation and
// costs O(text) regardless of how many secrets are registered.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sec/sensitive.h"
#include "tdm/tag_set.h"
#include "text/aho_corasick.h"

namespace bf::core {

class SecretGuard {
 public:
  /// One registered secret.
  struct Secret {
    std::string name;  ///< human-readable label for warnings/audit
    tdm::Tag tag;      ///< TDM tag attached to uploads containing it
  };

  /// Registers a secret. `value` is normalized before indexing, so
  /// "Hunter-2 42" and "hunter242" are the same secret. Values whose
  /// normalized form is shorter than `minLength` (default 6) are rejected
  /// to avoid false positives on trivial strings. Returns false if
  /// rejected.
  bool addSecret(std::string name, std::string_view value, tdm::Tag tag);

  /// One hit in a scanned text.
  struct Hit {
    std::string name;
    tdm::Tag tag;
  };

  /// Scans `text` (normalized internally) for all registered secrets.
  /// Distinct secrets are reported once each. Only the registered secret
  /// NAMES ever leave this call — never the scanned content.
  [[nodiscard]] std::vector<Hit> scan(sec::SensitiveView text);

  /// True if any secret occurs in `text`.
  [[nodiscard]] bool containsSecret(sec::SensitiveView text);

  [[nodiscard]] std::size_t size() const noexcept { return secrets_.size(); }

  /// Minimum normalized secret length (guards against trivial patterns).
  static constexpr std::size_t kMinLength = 6;

 private:
  text::AhoCorasick automaton_;
  std::vector<Secret> secrets_;
};

}  // namespace bf::core
