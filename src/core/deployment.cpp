#include "core/deployment.h"

#include <fstream>

#include "crypto/chacha20.h"
#include "flow/snapshot.h"
#include "tdm/policy_snapshot.h"
#include "util/binary_io.h"
#include "util/hashing.h"

namespace bf::core {

namespace {

constexpr std::string_view kPlainMagic = "BFDEPP1\n";
constexpr std::string_view kEncMagic = "BFDEPE1\n";

crypto::Key256 deriveKey(std::string_view secret) {
  crypto::Key256 key{};
  std::uint64_t h = util::fnv1a64(secret);
  for (int i = 0; i < 4; ++i) {
    h = util::mix64(h + static_cast<std::uint64_t>(i) + 0xDEB1ULL);
    for (int b = 0; b < 8; ++b) {
      key[static_cast<std::size_t>(i * 8 + b)] =
          static_cast<std::uint8_t>(h >> (8 * b));
    }
  }
  return key;
}

}  // namespace

util::Status saveDeployment(BrowserFlowPlugin& plugin, const std::string& path,
                            std::string_view secret) {
  std::string payload;
  util::putStr(payload, flow::exportState(plugin.tracker()));
  util::putStr(payload, tdm::exportPolicy(plugin.policy()));

  std::string fileData;
  if (secret.empty()) {
    fileData.append(kPlainMagic);
    fileData += payload;
  } else {
    fileData.append(kEncMagic);
    crypto::Nonce96 nonce{};
    const std::uint64_t n1 = util::fnv1a64(payload);
    const std::uint64_t n2 = util::mix64(n1 ^ util::fnv1a64(secret));
    for (int i = 0; i < 8; ++i) {
      nonce[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(n1 >> (8 * i));
    }
    for (int i = 0; i < 4; ++i) {
      nonce[static_cast<std::size_t>(8 + i)] =
          static_cast<std::uint8_t>(n2 >> (8 * i));
    }
    fileData.append(reinterpret_cast<const char*>(nonce.data()), nonce.size());
    fileData += crypto::chacha20Xor(payload, deriveKey(secret), nonce);
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return util::Status::error("cannot open for writing: " + path);
  out.write(fileData.data(), static_cast<std::streamsize>(fileData.size()));
  if (!out) return util::Status::error("write failed: " + path);
  return {};
}

util::Result<util::Timestamp> loadDeployment(BrowserFlowPlugin& plugin,
                                             const std::string& path,
                                             std::string_view secret) {
  using R = util::Result<util::Timestamp>;
  std::ifstream in(path, std::ios::binary);
  if (!in) return R::error("cannot open: " + path);
  std::string fileData((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());

  std::string payload;
  if (fileData.substr(0, kEncMagic.size()) == kEncMagic) {
    if (secret.empty()) {
      return R::error("deployment file is encrypted; secret needed");
    }
    const std::size_t header = kEncMagic.size();
    if (fileData.size() < header + 12) return R::error("file truncated");
    crypto::Nonce96 nonce{};
    for (std::size_t i = 0; i < 12; ++i) {
      nonce[i] = static_cast<std::uint8_t>(fileData[header + i]);
    }
    payload = crypto::chacha20Xor(
        std::string_view(fileData).substr(header + 12), deriveKey(secret),
        nonce);
  } else if (fileData.substr(0, kPlainMagic.size()) == kPlainMagic) {
    payload = fileData.substr(kPlainMagic.size());
  } else {
    return R::error("not a BrowserFlow deployment file");
  }

  util::BinaryReader r(payload);
  const std::string trackerBlob = r.str();
  const std::string policyBlob = r.str();
  if (!r.ok() || !r.atEnd()) return R::error("deployment payload corrupt");

  const auto maxTs = flow::importState(plugin.tracker(), trackerBlob);
  if (!maxTs.ok()) return maxTs;
  const auto st = tdm::importPolicy(plugin.policy(), policyBlob);
  if (!st.ok()) return R::error(st.errorMessage());
  return maxTs.value();
}

}  // namespace bf::core
