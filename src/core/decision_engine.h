// DecisionEngine — BrowserFlow's two in-plugin modules (paper Fig. 1):
//
//  - the POLICY LOOKUP module "extracts the security label associated with
//    the text segment being uploaded": it observes the text in the flow
//    tracker, finds disclosing sources by similarity, and folds their
//    explicit tags into the segment's label as implicit tags;
//  - the POLICY ENFORCEMENT module "uses the security label to reason about
//    the compliance of the data propagation": the Li ⊆ Lp check plus the
//    configured action (warn / block / encrypt).
//
// Decisions can run synchronously or on a worker thread; either way each
// decision's response time is recorded, which is what Figs. 12/13 measure.
//
// Lock hierarchy (outermost first, see util/mutex.h):
//   stateMutex_ (kRankEngineState)    — pipeline state: config_, breaker,
//                                       and the serialisation point for
//                                       tracker/policy access;
//   queueMutex_ (kRankEngineQueue)    — async queue bookkeeping only;
//   pendingAuditsMutex_ (kRankPendingAudits) — leaf: buffered shed audits.
// queueMutex_ and stateMutex_ are never held together; both may be held
// above the tracker / obs / logging mutexes, never below them.
#pragma once

#include <atomic>
#include <deque>
#include <future>
#include <mutex>  // std::unique_lock over util::Mutex (lockState)
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/config.h"
#include "core/secret_guard.h"
#include "flow/tracker.h"
#include "obs/metrics.h"
#include "obs/stage.h"
#include "obs/trace_context.h"
#include "sec/sensitive.h"
#include "tdm/policy.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace bf::flow {
class DurabilityManager;
}  // namespace bf::flow

namespace bf::core {

/// Audit reason recorded when the durability manager's health flips to
/// degraded (and its counterpart when repair restores it). Decisions made
/// while degraded carry Decision::durabilityDegraded so the flight
/// recorder can explain every durability-degraded window.
inline constexpr const char kDurabilityDegraded[] = "durability-degraded";
inline constexpr const char kDurabilityRestored[] = "durability-restored";

/// One unit of work: "this text now exists in segment X of service Y; may
/// it be uploaded there?"
struct DecisionRequest {
  /// Stable segment name, e.g. "https://docs.google.com/d/1#n4".
  std::string segmentName;
  /// Containing document identity (usually the tab URL).
  std::string documentName;
  /// Destination service id (the tab's origin).
  std::string serviceId;
  /// The raw content being uploaded. Sensitive by type: the engine may
  /// fingerprint, hash or redact it, but cannot log/audit/export it whole.
  sec::SensitiveText text;
  flow::SegmentKind kind = flow::SegmentKind::kParagraph;
  /// Causal trace identity. Invalid (default) means the engine adopts the
  /// caller's ambient trace, or starts a fresh root at this ingress.
  obs::TraceContext trace;
  /// Ingress label recorded in the flight recorder ("plugin.paragraph",
  /// "dlp.appliance", ...). Must be a string literal.
  const char* ingress = "engine.decide";
};

struct Decision {
  enum class Action { kAllow, kWarn, kBlock, kEncrypt };
  Action action = Action::kAllow;
  [[nodiscard]] bool violation() const noexcept {
    return action != Action::kAllow;
  }
  /// Disclosing sources found by the lookup module.
  std::vector<flow::DisclosureHit> hits;
  /// Tags that made the Li ⊆ Lp check fail.
  std::vector<tdm::Tag> violatingTags;
  /// Names of registered short secrets found verbatim in the text
  /// (paper S4.4's data-equality case).
  std::vector<std::string> secretHits;
  /// Wall-clock time from request to decision.
  double responseTimeMs = 0.0;
  /// True when the engine answered WITHOUT running the full lookup
  /// pipeline (queue shed, deadline expiry, or open circuit breaker).
  /// The action then follows ResilienceConfig::degradedMode, and a
  /// kDecisionDegraded audit record exists for this decision.
  bool degraded = false;
  /// Why the decision degraded (empty when `degraded` is false).
  std::string degradedReason;
  /// True when the decision was made while the attached durability manager
  /// was unhealthy (WAL poisoned or last checkpoint failed). The pipeline
  /// still ran fully — `degraded` stays false — but a crash before repair
  /// completes could lose the mutations this decision observed, so the
  /// flight recorder retains these decisions (reason kDurabilityDegraded).
  bool durabilityDegraded = false;
  /// Provenance correlation ids (obs/flight_recorder.h): decisionId keys
  /// FlightRecorder::explain(); traceId links spans and histogram
  /// exemplars. Both 0 when provenance is disabled.
  std::uint64_t decisionId = 0;
  std::uint64_t traceId = 0;
  /// Policy labels the enforcement check consulted (the segment's
  /// effective tags and the destination's privilege), captured only for
  /// decisions the flight recorder retains.
  std::vector<std::string> labelsConsulted;
};

/// Stamps `decision` with provenance ids and reports a DecisionTrace to the
/// process-wide FlightRecorder (which retains it per its sampling policy;
/// unretained decisions only consume an id). Used by the engine after every
/// decision, and by plugin paths that bypass decide() (XHR upload checks).
/// Call WITHOUT stateMutex_ held — the recorder's mutex ranks above the
/// pipeline locks, but record construction should stay off the serialised
/// section. `content` is the checked text; only its redact() preview is
/// retained in the trace (declassification gate, DESIGN.md §14).
void recordDecisionProvenance(const char* ingress,
                              std::string_view segmentName,
                              std::string_view documentName,
                              std::string_view serviceId,
                              sec::SensitiveView content,
                              const obs::TraceContext& trace,
                              const obs::StageBreakdown& stages,
                              Decision& decision);

class DecisionEngine {
 public:
  /// `tracker` and `policy` are shared with the plug-in; not owned.
  DecisionEngine(const BrowserFlowConfig& config, flow::FlowTracker* tracker,
                 tdm::TdmPolicy* policy);
  ~DecisionEngine();

  DecisionEngine(const DecisionEngine&) = delete;
  DecisionEngine& operator=(const DecisionEngine&) = delete;

  /// Runs the full lookup + enforcement pipeline inline.
  Decision decide(const DecisionRequest& request) BF_EXCLUDES(stateMutex_);

  /// Queues the request for the worker thread (started lazily).
  std::future<Decision> decideAsync(DecisionRequest request)
      BF_EXCLUDES(queueMutex_, pendingAuditsMutex_);

  /// Blocks until the worker queue is empty (test/bench synchronisation).
  void drain() BF_EXCLUDES(queueMutex_, stateMutex_);

  /// Lookup-only path for text that is not (yet) hosted anywhere: builds
  /// the label similarity implies, without registering any segment. Used
  /// for form submissions where the text only exists in an <input>.
  [[nodiscard]] tdm::Label lookupLabelForText(
      sec::SensitiveView text, const std::string& excludeDocument = {}) const
      BF_EXCLUDES(stateMutex_);

  /// Latency statistics over every decision made so far, derived from the
  /// bf_decision_latency_ms histogram — what Figs. 12/13 measure.
  /// Percentiles are histogram estimates (linear interpolation within the
  /// containing bucket). The histogram lives in the process-wide obs
  /// registry, so concurrent engines in one process share it.
  struct LatencySummary {
    std::uint64_t count = 0;
    double meanMs = 0.0;
    double minMs = 0.0;
    double maxMs = 0.0;
    double p50Ms = 0.0;
    double p95Ms = 0.0;
    double p99Ms = 0.0;
  };
  [[nodiscard]] LatencySummary latencySummary() const;

  /// Copy of the decision-latency histogram for custom percentile / CDF
  /// extraction (bench harnesses).
  [[nodiscard]] obs::HistogramData latencyData() const;

  /// Zeroes the decision-latency histogram (test / bench phase boundary).
  void resetLatencyStats();

  /// Switches the enforcement action for future violations (advisory
  /// deployments often start in warn mode and move to block). Atomic so
  /// callers may flip the mode while the worker is deciding: each decision
  /// sees either the old or the new mode, never a torn value.
  void setMode(EnforcementMode mode) noexcept {
    mode_.store(mode, std::memory_order_relaxed);
  }
  [[nodiscard]] EnforcementMode mode() const noexcept {
    return mode_.load(std::memory_order_relaxed);
  }

  /// Installs the exact-match guard for short secrets (not owned; may be
  /// null). A secret hit attaches the secret's tag to the segment as an
  /// implicit tag, so the normal Li ⊆ Lp check — and per-copy suppression
  /// — applies.
  void setSecretGuard(SecretGuard* guard) noexcept { guard_ = guard; }

  /// Serialises direct tracker/policy access with the engine's worker
  /// thread. Any caller that touches the shared stores WITHOUT going
  /// through decide()/decideAsync() must hold this while doing so.
  /// Never hold it across a decide() call — that deadlocks.
  /// Thread-safety analysis cannot track a capability through the returned
  /// handle, so the acquisition is deliberately unchecked here; the
  /// runtime lock-rank assertion still applies.
  [[nodiscard]] std::unique_lock<util::Mutex> lockState() const
      BF_NO_THREAD_SAFETY_ANALYSIS {
    return std::unique_lock<util::Mutex>(stateMutex_);
  }

  /// True while the disclosure-lookup circuit breaker is open (decisions
  /// are answered degraded instead of running the lookup).
  [[nodiscard]] bool breakerOpen() const BF_EXCLUDES(stateMutex_);

  /// Attaches the durability manager (flow/wal.h; not owned, may be null).
  /// The engine then drives durability maintenance from the decision path:
  /// after each decision — while still holding stateMutex_, which quiesces
  /// pipeline mutations — it calls DurabilityManager::maintain(), which
  /// rolls due checkpoints when healthy and paces repair attempts when
  /// degraded. Durability failures NEVER block decisions (availability
  /// over durability): the WAL/checkpoint metrics record them,
  /// durabilityHealthy() turns false, decisions carry
  /// Decision::durabilityDegraded, and each health flip writes one
  /// kDecisionDegraded audit record (kDurabilityDegraded /
  /// kDurabilityRestored) — but the pipeline keeps answering.
  void setDurability(flow::DurabilityManager* durability)
      BF_EXCLUDES(stateMutex_);

  /// False when the attached durability manager stopped persisting
  /// (WAL append failures or a failed checkpoint). True when healthy or
  /// when no manager is attached.
  [[nodiscard]] bool durabilityHealthy() const BF_EXCLUDES(stateMutex_);

  /// Replaces the resilience knobs at runtime (operators tune shedding /
  /// breaker thresholds without restarting the engine). Does not reset
  /// breaker state: an open breaker still needs a healthy probe to close.
  /// Safe to call while async decisions are in flight: the knobs read off
  /// the decision path (queue cap, deadline, degraded mode) are atomic, so
  /// concurrent decisions see either the old or the new value.
  void setResilience(const ResilienceConfig& resilience)
      BF_EXCLUDES(stateMutex_);

 private:
  struct QueueItem {
    DecisionRequest request;
    std::promise<Decision> promise;
    std::uint64_t enqueuedTicks = 0;  ///< util::fastTicks() at enqueue
  };

  void workerLoop() BF_EXCLUDES(queueMutex_, stateMutex_);
  Decision decideLocked(const DecisionRequest& request)
      BF_REQUIRES(stateMutex_);
  /// Builds a degraded decision (action per ResilienceConfig::degradedMode)
  /// and bumps bf_decision_degraded_total. Takes no locks.
  Decision buildDegraded(const char* reason);
  /// buildDegraded + the kDecisionDegraded audit record (the audit log is
  /// part of the shared policy state).
  Decision makeDegradedLocked(const DecisionRequest& request,
                              const char* reason) BF_REQUIRES(stateMutex_);
  /// Writes buffered shed-audit records to the policy. The shed path itself
  /// cannot audit inline: shedding exists because the pipeline (and its
  /// mutex) is saturated, so it buffers the record and the next stateMutex_
  /// holder flushes it.
  void flushPendingAuditsLocked() BF_REQUIRES(stateMutex_)
      BF_EXCLUDES(pendingAuditsMutex_);

  BrowserFlowConfig config_ BF_GUARDED_BY(stateMutex_);
  /// Enforcement action applied to violations; mirrors config_.mode so
  /// setMode()/mode() need no lock (the historical unlocked write to
  /// config_.mode raced the worker's read — see engine_concurrency_test).
  std::atomic<EnforcementMode> mode_;
  // Mirrors of the resilience knobs that are read WITHOUT stateMutex_
  // (decideAsync's shed check, the worker's deadline check, and
  // buildDegraded on the shed path). config_.resilience itself is only
  // touched under stateMutex_; setResilience refreshes these mirrors.
  std::atomic<int> maxQueueDepth_;
  std::atomic<double> decisionDeadlineMs_;
  std::atomic<DegradedMode> degradedMode_;
  flow::FlowTracker* tracker_;
  tdm::TdmPolicy* policy_;
  SecretGuard* guard_ = nullptr;
  flow::DurabilityManager* durability_ BF_GUARDED_BY(stateMutex_) = nullptr;
  /// Last durability health observed on the decision path; a flip in
  /// either direction writes one audit record (not one per decision).
  bool lastDurabilityHealthy_ BF_GUARDED_BY(stateMutex_) = true;

  // One mutex serialises tracker/policy access between the caller thread
  // and the worker; the paper's engine likewise processes decisions one at
  // a time in the extension's background page. Outermost rank: everything
  // the pipeline touches (tracker, metrics, trace, logging) nests inside.
  mutable util::Mutex stateMutex_{util::kRankEngineState,
                                  "DecisionEngine.stateMutex_"};

  util::Mutex queueMutex_{util::kRankEngineQueue,
                          "DecisionEngine.queueMutex_"};
  util::CondVar queueCv_;
  std::deque<QueueItem> queue_ BF_GUARDED_BY(queueMutex_);
  // Started once under queueMutex_; joined in the destructor after
  // stopping_ is set (destruction never races decideAsync by contract).
  std::thread worker_;
  bool workerStarted_ BF_GUARDED_BY(queueMutex_) = false;
  bool stopping_ BF_GUARDED_BY(queueMutex_) = false;
  std::size_t inFlight_ BF_GUARDED_BY(queueMutex_) = 0;
  util::CondVar idleCv_;

  // Circuit-breaker state for the disclosure lookup (guarded by
  // stateMutex_, like everything decideLocked touches).
  int consecutiveSlowLookups_ BF_GUARDED_BY(stateMutex_) = 0;
  bool breakerIsOpen_ BF_GUARDED_BY(stateMutex_) = false;
  int breakerSkipsRemaining_ BF_GUARDED_BY(stateMutex_) = 0;

  // Audit records owed for shed decisions, written by the next thread that
  // holds stateMutex_ (leaf mutex: held only for the append/swap).
  struct PendingAudit {
    std::string segment;
    std::string service;
    std::string reason;
  };
  util::Mutex pendingAuditsMutex_{util::kRankPendingAudits,
                                  "DecisionEngine.pendingAuditsMutex_"};
  std::vector<PendingAudit> pendingAudits_ BF_GUARDED_BY(pendingAuditsMutex_);

  // Registry-backed instrumentation (resolved once in the constructor).
  obs::Histogram* latency_;        // bf_decision_latency_ms
  obs::Gauge* queueDepth_;         // bf_decision_queue_depth
  obs::Counter* actionCounters_[4];  // bf_decision_actions_total by kind
  obs::Counter* degradedTotal_;    // bf_decision_degraded_total
  obs::Counter* shedTotal_;        // bf_decision_shed_total
  obs::Counter* deadlineTotal_;    // bf_decision_deadline_expired_total
  obs::Counter* breakerTrips_;     // bf_decision_breaker_trips_total
  obs::Gauge* breakerOpenGauge_;   // bf_decision_breaker_open
};

}  // namespace bf::core
