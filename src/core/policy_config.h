// Policy configuration loader.
//
// "Administrators specify an enterprise-wide data disclosure policy"
// (paper S1) — in a deployable system that policy lives in a config file,
// not in C++ code. The loader understands an INI-style dialect:
//
//   # comments and blank lines are ignored
//   [defaults]
//   mode = warn | block | encrypt
//
//   [service https://itool.corp]
//   name = Interview Tool
//   privilege = ti, tw          # Lp
//   confidentiality = ti        # Lc
//   adapter = json: note_text, subject   # optional upload adapter
//
//   [secret prod-api-key]
//   tag = api-key
//   value = sk-live-9A7xQ2Lm44
//
// Every [service] becomes a ServiceRegistry entry (and optionally a JSON
// adapter registration); every [secret] feeds the SecretGuard. Unknown
// sections/keys are collected as warnings rather than hard errors, so a
// newer config degrades gracefully on an older client.
#pragma once

#include <string>
#include <vector>

#include "core/plugin.h"
#include "util/result.h"

namespace bf::core {

struct PolicyConfigSummary {
  std::size_t services = 0;
  std::size_t secrets = 0;
  bool modeSet = false;
  /// Non-fatal issues: unknown keys, rejected secrets, etc.
  std::vector<std::string> warnings;
};

/// Applies a config text to the plug-in. Returns the summary, or an error
/// for structurally invalid input (bad section headers, bad mode values).
[[nodiscard]] util::Result<PolicyConfigSummary> loadPolicyConfig(
    BrowserFlowPlugin& plugin, std::string_view configText);

/// File variant.
[[nodiscard]] util::Result<PolicyConfigSummary> loadPolicyConfigFile(
    BrowserFlowPlugin& plugin, const std::string& path);

}  // namespace bf::core
