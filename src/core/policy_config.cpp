#include "core/policy_config.h"

#include <fstream>

#include "util/strings.h"

namespace bf::core {

namespace {

/// "a, b , c" -> {"a", "b", "c"} (trimmed, empties dropped).
std::vector<std::string> splitList(std::string_view csv) {
  std::vector<std::string> out;
  for (std::string_view piece : util::split(csv, ',')) {
    const std::string_view trimmed = util::trim(piece);
    if (!trimmed.empty()) out.emplace_back(trimmed);
  }
  return out;
}

tdm::TagSet toTagSet(std::string_view csv) {
  tdm::TagSet tags;
  for (auto& t : splitList(csv)) tags.insert(std::move(t));
  return tags;
}

struct PendingService {
  tdm::ServiceInfo info;
  bool jsonAdapter = false;
  std::vector<std::string> adapterKeys;
};

struct PendingSecret {
  std::string name;
  tdm::Tag tag;
  std::string value;
};

}  // namespace

util::Result<PolicyConfigSummary> loadPolicyConfig(
    BrowserFlowPlugin& plugin, std::string_view configText) {
  using R = util::Result<PolicyConfigSummary>;
  PolicyConfigSummary summary;

  enum class Section { kNone, kDefaults, kService, kSecret };
  Section section = Section::kNone;
  PendingService service;
  PendingSecret secret;

  auto flushService = [&] {
    if (service.info.id.empty()) return;
    plugin.policy().services().upsert(service.info);
    if (service.jsonAdapter) {
      plugin.registerServiceAdapter(
          service.info.id,
          std::make_unique<JsonFieldAdapter>(service.adapterKeys));
    }
    ++summary.services;
    service = PendingService{};
  };
  auto flushSecret = [&] {
    if (secret.name.empty()) return;
    if (secret.value.empty() || secret.tag.empty()) {
      summary.warnings.push_back("secret '" + secret.name +
                                 "' needs both value and tag; skipped");
    } else if (!plugin.secretGuard().addSecret(secret.name, secret.value,
                                               secret.tag)) {
      summary.warnings.push_back("secret '" + secret.name +
                                 "' too short after normalization; skipped");
    } else {
      ++summary.secrets;
    }
    secret = PendingSecret{};
  };

  std::size_t lineNo = 0;
  for (std::string_view rawLine : util::split(configText, '\n')) {
    ++lineNo;
    std::string_view line = util::trim(rawLine);
    if (line.empty() || line.front() == '#') continue;

    if (line.front() == '[') {
      if (line.back() != ']') {
        return R::error("line " + std::to_string(lineNo) +
                        ": unterminated section header");
      }
      flushService();
      flushSecret();
      const std::string_view body = util::trim(line.substr(1, line.size() - 2));
      const std::size_t space = body.find(' ');
      const std::string_view kind =
          space == std::string_view::npos ? body : body.substr(0, space);
      const std::string_view arg =
          space == std::string_view::npos
              ? std::string_view{}
              : util::trim(body.substr(space + 1));
      if (kind == "defaults") {
        section = Section::kDefaults;
      } else if (kind == "service") {
        if (arg.empty()) {
          return R::error("line " + std::to_string(lineNo) +
                          ": [service] needs an origin id");
        }
        section = Section::kService;
        service.info.id = std::string(arg);
        service.info.displayName = std::string(arg);
      } else if (kind == "secret") {
        if (arg.empty()) {
          return R::error("line " + std::to_string(lineNo) +
                          ": [secret] needs a name");
        }
        section = Section::kSecret;
        secret.name = std::string(arg);
      } else {
        summary.warnings.push_back("line " + std::to_string(lineNo) +
                                   ": unknown section '" + std::string(kind) +
                                   "' ignored");
        section = Section::kNone;
      }
      continue;
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      summary.warnings.push_back("line " + std::to_string(lineNo) +
                                 ": not a key=value pair; ignored");
      continue;
    }
    const std::string key(util::trim(line.substr(0, eq)));
    const std::string_view value = util::trim(line.substr(eq + 1));

    switch (section) {
      case Section::kDefaults:
        if (key == "mode") {
          if (value == "warn") {
            plugin.setEnforcementMode(EnforcementMode::kWarn);
          } else if (value == "block") {
            plugin.setEnforcementMode(EnforcementMode::kBlock);
          } else if (value == "encrypt") {
            plugin.setEnforcementMode(EnforcementMode::kEncrypt);
          } else {
            return R::error("line " + std::to_string(lineNo) +
                            ": mode must be warn|block|encrypt");
          }
          summary.modeSet = true;
        } else {
          summary.warnings.push_back("line " + std::to_string(lineNo) +
                                     ": unknown defaults key '" + key + "'");
        }
        break;
      case Section::kService:
        if (key == "name") {
          service.info.displayName = std::string(value);
        } else if (key == "privilege") {
          service.info.privilege = toTagSet(value);
        } else if (key == "confidentiality") {
          service.info.confidentiality = toTagSet(value);
        } else if (key == "adapter") {
          if (util::startsWith(value, "json:") || value == "json") {
            service.jsonAdapter = true;
            const std::size_t colon = value.find(':');
            if (colon != std::string_view::npos) {
              service.adapterKeys = splitList(value.substr(colon + 1));
            }
          } else {
            summary.warnings.push_back("line " + std::to_string(lineNo) +
                                       ": unknown adapter '" +
                                       std::string(value) + "'");
          }
        } else {
          summary.warnings.push_back("line " + std::to_string(lineNo) +
                                     ": unknown service key '" + key + "'");
        }
        break;
      case Section::kSecret:
        if (key == "tag") {
          secret.tag = std::string(value);
        } else if (key == "value") {
          secret.value = std::string(value);
        } else {
          summary.warnings.push_back("line " + std::to_string(lineNo) +
                                     ": unknown secret key '" + key + "'");
        }
        break;
      case Section::kNone:
        summary.warnings.push_back("line " + std::to_string(lineNo) +
                                   ": key outside any section; ignored");
        break;
    }
  }
  flushService();
  flushSecret();
  return summary;
}

util::Result<PolicyConfigSummary> loadPolicyConfigFile(
    BrowserFlowPlugin& plugin, const std::string& path) {
  using R = util::Result<PolicyConfigSummary>;
  std::ifstream in(path);
  if (!in) return R::error("cannot open: " + path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return loadPolicyConfig(plugin, text);
}

}  // namespace bf::core
