// Deployment persistence: one encrypted file holding the full BrowserFlow
// state — fingerprint stores (flow/snapshot.h) AND policy state
// (tdm/policy_snapshot.h) — so an enterprise install survives restarts
// with labels, suppressions, custom tags and the audit trail intact.
#pragma once

#include <string>

#include "core/plugin.h"
#include "util/result.h"

namespace bf::core {

/// Writes the plug-in's tracker + policy state to `path`. With a non-empty
/// `secret` the payload is ChaCha20-encrypted at rest (paper S4.4).
[[nodiscard]] util::Status saveDeployment(BrowserFlowPlugin& plugin,
                                          const std::string& path,
                                          std::string_view secret);

/// Restores a file written by saveDeployment() into a freshly constructed
/// plug-in (empty tracker and policy). Returns the largest timestamp in
/// the snapshot; the caller must advance the plug-in's clock past it.
[[nodiscard]] util::Result<util::Timestamp> loadDeployment(
    BrowserFlowPlugin& plugin, const std::string& path,
    std::string_view secret);

}  // namespace bf::core
