#include "core/service_adapter.h"

#include <algorithm>

#include "browser/forms.h"
#include "util/json_text.h"

namespace bf::core {

bool isConventionalTextField(const std::string& key) {
  static constexpr const char* kTextFields[] = {"text",    "content", "body",
                                                "message", "comment", "value"};
  return std::any_of(std::begin(kTextFields), std::end(kTextFields),
                     [&](const char* f) { return key == f; });
}

// ---- FormEncodedAdapter -----------------------------------------------------

std::vector<UploadField> FormEncodedAdapter::extractUploadText(
    const browser::HttpRequest& request) const {
  std::vector<UploadField> out;
  for (const auto& [key, value] : browser::parseFormBody(request.body)) {
    if (isConventionalTextField(key) && !value.empty()) {
      out.push_back({key, value});
    }
  }
  return out;
}

std::string FormEncodedAdapter::rebuildBody(
    const browser::HttpRequest& request,
    const std::vector<UploadField>& fields) const {
  auto pairs = browser::parseFormBody(request.body);
  for (const auto& f : fields) pairs[f.key] = std::string(f.text.raw());
  return browser::encodeFormPairs(pairs);
}

// ---- JsonFieldAdapter ---------------------------------------------------------

JsonFieldAdapter::JsonFieldAdapter(std::vector<std::string> textKeys)
    : textKeys_(std::move(textKeys)) {}

bool JsonFieldAdapter::isTextKey(const std::string& key) const {
  if (textKeys_.empty()) return isConventionalTextField(key);
  return std::find(textKeys_.begin(), textKeys_.end(), key) !=
         textKeys_.end();
}

std::vector<UploadField> JsonFieldAdapter::extractUploadText(
    const browser::HttpRequest& request) const {
  std::vector<UploadField> out;
  if (!util::looksLikeJson(request.body)) return out;
  for (const auto& field : util::scanJsonStringFields(request.body)) {
    if (isTextKey(field.key) && !field.value.empty()) {
      out.push_back({field.key, field.value});
    }
  }
  return out;
}

std::string JsonFieldAdapter::rebuildBody(
    const browser::HttpRequest& request,
    const std::vector<UploadField>& fields) const {
  const auto scanned = util::scanJsonStringFields(request.body);
  std::vector<std::pair<std::size_t, std::string>> replacements;
  std::size_t next = 0;
  for (std::size_t i = 0; i < scanned.size() && next < fields.size(); ++i) {
    if (isTextKey(scanned[i].key) && !scanned[i].value.empty()) {
      replacements.emplace_back(i, std::string(fields[next].text.raw()));
      ++next;
    }
  }
  return util::replaceJsonStringValues(request.body, scanned, replacements);
}

}  // namespace bf::core
