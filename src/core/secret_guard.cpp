#include "core/secret_guard.h"

#include <algorithm>

#include "obs/metrics.h"
#include "text/normalizer.h"

namespace bf::core {

namespace {
obs::Counter& scansCounter() {
  static obs::Counter& c = obs::registry().counter(
      "bf_secret_scans_total", "Texts scanned for registered short secrets");
  return c;
}
obs::Counter& hitsCounter() {
  static obs::Counter& c = obs::registry().counter(
      "bf_secret_hits_total", "Registered secrets found verbatim in texts");
  return c;
}
}  // namespace

bool SecretGuard::addSecret(std::string name, std::string_view value,
                            tdm::Tag tag) {
  const text::NormalizedText normalized = text::normalize(value);
  if (normalized.size() < kMinLength) return false;
  automaton_.addPattern(normalized.text, secrets_.size());
  secrets_.push_back(Secret{std::move(name), std::move(tag)});
  return true;
}

std::vector<SecretGuard::Hit> SecretGuard::scan(sec::SensitiveView text) {
  std::vector<Hit> out;
  if (secrets_.empty()) return out;
  scansCounter().inc();
  const text::NormalizedText normalized = text::normalize(text.raw());
  std::vector<bool> seen(secrets_.size(), false);
  for (const auto& match : automaton_.findAll(normalized.text)) {
    if (match.id < seen.size() && !seen[match.id]) {
      seen[match.id] = true;
      out.push_back(Hit{secrets_[match.id].name, secrets_[match.id].tag});
    }
  }
  hitsCounter().inc(out.size());
  return out;
}

bool SecretGuard::containsSecret(sec::SensitiveView text) {
  if (secrets_.empty()) return false;
  return automaton_.containsAny(text::normalize(text.raw()).text);
}

}  // namespace bf::core
