// BrowserFlow configuration.
#pragma once

#include <cstdint>
#include <string>

#include "flow/tracker.h"

namespace bf::core {

/// What the enforcement module does when an upload violates the policy
/// (paper S3: "either permitting the data upload or preventing it, e.g. by
/// encrypting the data before transmission"; the default is the advisory
/// model — warn, let the user decide).
enum class EnforcementMode : std::uint8_t {
  kWarn = 0,     ///< let the upload proceed, surface a warning (advisory)
  kBlock = 1,    ///< suppress the outgoing request
  kEncrypt = 2,  ///< encrypt the payload before transmission
};

struct BrowserFlowConfig {
  /// Fingerprinting and disclosure parameters. Defaults follow the paper's
  /// evaluation (S6.1): 32-bit hashes, 15-char n-grams, 30-char windows,
  /// T_par = 0.5.
  flow::TrackerConfig tracker;
  EnforcementMode mode = EnforcementMode::kWarn;
  /// Key material for EnforcementMode::kEncrypt.
  std::string orgSecret = "browserflow-org-secret";
  /// Run per-paragraph disclosure checks on a background worker
  /// ("asynchronously to the main request processing", S6.2). Tests use
  /// false for determinism; the response-time benches use true.
  bool asyncParagraphChecks = false;
};

}  // namespace bf::core
