// BrowserFlow configuration.
#pragma once

#include <cstdint>
#include <string>

#include "flow/tracker.h"

namespace bf::core {

/// What the enforcement module does when an upload violates the policy
/// (paper S3: "either permitting the data upload or preventing it, e.g. by
/// encrypting the data before transmission"; the default is the advisory
/// model — warn, let the user decide).
enum class EnforcementMode : std::uint8_t {
  kWarn = 0,     ///< let the upload proceed, surface a warning (advisory)
  kBlock = 1,    ///< suppress the outgoing request
  kEncrypt = 2,  ///< encrypt the payload before transmission
};

/// What a degraded decision does when the engine cannot complete the full
/// lookup pipeline (queue overflow, per-decision deadline, open circuit
/// breaker). Either way the decision is flagged `degraded` and recorded in
/// the TDM audit log — degradation is visible, never silent.
enum class DegradedMode : std::uint8_t {
  kFailOpen = 0,   ///< allow the upload, leave an audit record
  kFailClosed = 1, ///< block the upload until the engine recovers
};

/// Robustness knobs for the decision engine. Defaults keep every feature
/// disabled (<= 0) so the engine behaves exactly as before unless a
/// deployment opts in.
struct ResilienceConfig {
  /// Upper bound on queued async decisions; past it decideAsync() sheds
  /// load with an immediate degraded decision. <= 0 disables shedding.
  int maxQueueDepth = 0;
  /// Per-decision deadline measured from enqueue; a request that waited
  /// longer is answered degraded without running the pipeline. <= 0
  /// disables the deadline.
  double decisionDeadlineMs = 0.0;
  /// Circuit breaker around the disclosure lookup: a lookup slower than
  /// this budget counts as slow; `breakerTripThreshold` consecutive slow
  /// lookups open the breaker. <= 0 disables the breaker.
  double breakerLatencyBudgetMs = 0.0;
  int breakerTripThreshold = 5;
  /// While open, this many decisions skip the lookup (degraded) before a
  /// half-open probe runs the real pipeline again.
  int breakerOpenDecisions = 50;
  DegradedMode degradedMode = DegradedMode::kFailOpen;
};

struct BrowserFlowConfig {
  /// Fingerprinting and disclosure parameters. Defaults follow the paper's
  /// evaluation (S6.1): 32-bit hashes, 15-char n-grams, 30-char windows,
  /// T_par = 0.5.
  flow::TrackerConfig tracker;
  EnforcementMode mode = EnforcementMode::kWarn;
  /// Key material for EnforcementMode::kEncrypt.
  std::string orgSecret = "browserflow-org-secret";
  /// Run per-paragraph disclosure checks on a background worker
  /// ("asynchronously to the main request processing", S6.2). Tests use
  /// false for determinism; the response-time benches use true.
  bool asyncParagraphChecks = false;
  /// Overload / fault handling for the decision engine (all off by default).
  ResilienceConfig resilience;
};

}  // namespace bf::core
