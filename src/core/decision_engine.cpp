#include "core/decision_engine.h"

#include "obs/trace.h"
#include "util/stopwatch.h"

namespace bf::core {

DecisionEngine::DecisionEngine(const BrowserFlowConfig& config,
                               flow::FlowTracker* tracker,
                               tdm::TdmPolicy* policy)
    : config_(config), tracker_(tracker), policy_(policy) {
  obs::MetricsRegistry& r = obs::registry();
  latency_ = &r.histogram("bf_decision_latency_ms",
                          "Wall-clock time per disclosure decision");
  queueDepth_ = &r.gauge("bf_decision_queue_depth",
                         "Decision requests waiting for the worker thread");
  actionCounters_[static_cast<int>(Decision::Action::kAllow)] =
      &r.counter("bf_decision_allow_total", "Decisions that allowed upload");
  actionCounters_[static_cast<int>(Decision::Action::kWarn)] =
      &r.counter("bf_decision_warn_total", "Decisions that warned");
  actionCounters_[static_cast<int>(Decision::Action::kBlock)] =
      &r.counter("bf_decision_block_total", "Decisions that blocked upload");
  actionCounters_[static_cast<int>(Decision::Action::kEncrypt)] = &r.counter(
      "bf_decision_encrypt_total", "Decisions that encrypted before upload");
}

DecisionEngine::~DecisionEngine() {
  {
    std::lock_guard<std::mutex> lock(queueMutex_);
    stopping_ = true;
  }
  queueCv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

Decision DecisionEngine::decide(const DecisionRequest& request) {
  std::lock_guard<std::mutex> lock(stateMutex_);
  return decideLocked(request);
}

Decision DecisionEngine::decideLocked(const DecisionRequest& request) {
  BF_SPAN("engine.decide");
  util::Stopwatch watch;
  Decision decision;

  // ---- Policy lookup module -------------------------------------------------
  // 1. The text now exists in this segment of this service: observe it.
  //    First observation assigns the service's Lc as explicit tags.
  const flow::SegmentId id = tracker_->observeSegment(
      request.kind, request.segmentName, request.documentName,
      request.serviceId, request.text);
  policy_->onSegmentObserved(request.segmentName, request.serviceId);

  // 2. Find the sources this text discloses (cached when the fingerprint
  //    is unchanged — the per-keystroke fast path).
  decision.hits = tracker_->sourcesForSegment(id);

  // 3. The segment's implicit tags become exactly the explicit tags of its
  //    CURRENT disclosing sources (paper S3.2): new disclosure attaches
  //    taint, and edits that removed all resemblance shed it.
  std::vector<std::string> sourceNames;
  sourceNames.reserve(decision.hits.size());
  for (const auto& hit : decision.hits) sourceNames.push_back(hit.sourceName);
  policy_->refreshImplicitTags(request.segmentName, sourceNames);

  // 3b. Exact-match pass for short secrets (S4.4): each hit attaches the
  //     secret's tag as an implicit tag, sharing the refresh lifecycle —
  //     deleting the secret from the text sheds the tag on the next edit.
  if (guard_ != nullptr) {
    for (const auto& hit : guard_->scan(request.text)) {
      policy_->addImplicitTag(request.segmentName, hit.tag);
      decision.secretHits.push_back(hit.name);
    }
  }

  // ---- Policy enforcement module ---------------------------------------------
  const tdm::UploadDecision check =
      policy_->checkUpload(request.segmentName, request.serviceId);
  if (check.allowed) {
    decision.action = Decision::Action::kAllow;
  } else {
    decision.violatingTags = check.violatingTags;
    switch (config_.mode) {
      case EnforcementMode::kWarn:
        decision.action = Decision::Action::kWarn;
        break;
      case EnforcementMode::kBlock:
        decision.action = Decision::Action::kBlock;
        break;
      case EnforcementMode::kEncrypt:
        decision.action = Decision::Action::kEncrypt;
        break;
    }
  }

  decision.responseTimeMs = watch.elapsedMillis();
  latency_->observe(decision.responseTimeMs);
  actionCounters_[static_cast<int>(decision.action)]->inc();
  return decision;
}

std::future<Decision> DecisionEngine::decideAsync(DecisionRequest request) {
  std::promise<Decision> promise;
  std::future<Decision> future = promise.get_future();
  {
    std::lock_guard<std::mutex> lock(queueMutex_);
    queue_.emplace_back(std::move(request), std::move(promise));
    ++inFlight_;
    queueDepth_->set(static_cast<double>(queue_.size()));
    if (!workerStarted_) {
      worker_ = std::thread([this] { workerLoop(); });
      workerStarted_ = true;
    }
  }
  queueCv_.notify_one();
  return future;
}

void DecisionEngine::drain() {
  std::unique_lock<std::mutex> lock(queueMutex_);
  idleCv_.wait(lock, [this] { return inFlight_ == 0; });
}

void DecisionEngine::workerLoop() {
  for (;;) {
    std::pair<DecisionRequest, std::promise<Decision>> item;
    {
      std::unique_lock<std::mutex> lock(queueMutex_);
      queueCv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      item = std::move(queue_.front());
      queue_.pop_front();
      queueDepth_->set(static_cast<double>(queue_.size()));
    }
    Decision d;
    {
      std::lock_guard<std::mutex> lock(stateMutex_);
      d = decideLocked(item.first);
    }
    item.second.set_value(std::move(d));
    {
      std::lock_guard<std::mutex> lock(queueMutex_);
      --inFlight_;
    }
    idleCv_.notify_all();
  }
}

tdm::Label DecisionEngine::lookupLabelForText(
    const std::string& text, const std::string& excludeDocument) const {
  std::lock_guard<std::mutex> lock(stateMutex_);
  tdm::Label label;
  for (const auto& hit : tracker_->checkText(text, excludeDocument)) {
    const tdm::Label* src = policy_->labelOf(hit.sourceName);
    if (src != nullptr) label.addImplicitAll(src->propagatableTags());
  }
  return label;
}

DecisionEngine::LatencySummary DecisionEngine::latencySummary() const {
  const obs::HistogramData data = latency_->data();
  LatencySummary out;
  out.count = data.count;
  out.meanMs = data.mean();
  out.minMs = data.min;
  out.maxMs = data.max;
  out.p50Ms = data.percentile(50.0);
  out.p95Ms = data.percentile(95.0);
  out.p99Ms = data.percentile(99.0);
  return out;
}

obs::HistogramData DecisionEngine::latencyData() const {
  return latency_->data();
}

void DecisionEngine::resetLatencyStats() { latency_->reset(); }

}  // namespace bf::core
