#include "core/decision_engine.h"

#include "flow/wal.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "util/clock.h"
#include "util/stopwatch.h"

namespace bf::core {

namespace {

const char* actionName(Decision::Action action) {
  switch (action) {
    case Decision::Action::kAllow:
      return "allow";
    case Decision::Action::kWarn:
      return "warn";
    case Decision::Action::kBlock:
      return "block";
    case Decision::Action::kEncrypt:
      return "encrypt";
  }
  return "unknown";
}

/// The trace a decision runs under: the request's own if the ingress set
/// one, else a child of the caller's ambient trace, else a fresh root.
obs::TraceContext resolveTrace(const obs::TraceContext& requested) {
  return requested.valid() ? requested : obs::ingressTrace();
}

}  // namespace

void recordDecisionProvenance(const char* ingress,
                              std::string_view segmentName,
                              std::string_view documentName,
                              std::string_view serviceId,
                              sec::SensitiveView content,
                              const obs::TraceContext& trace,
                              const obs::StageBreakdown& stages,
                              Decision& decision) {
  if (!obs::provenanceEnabled()) return;
  obs::FlightRecorder& recorder = obs::FlightRecorder::instance();
  decision.traceId = trace.traceId;
  if (!trace.sampled && !decision.degraded && !decision.durabilityDegraded &&
      !decision.violation()) {
    // Fast path: the recorder would not retain this decision, so skip the
    // record construction (strings/vectors) entirely.
    decision.decisionId = recorder.nextDecisionId();
    return;
  }
  obs::DecisionTrace record;
  record.traceId = trace.traceId;
  record.spanId = trace.spanId;
  record.sampled = trace.sampled;
  record.ingress = ingress;
  record.segmentName = segmentName;
  record.documentName = documentName;
  record.serviceId = serviceId;
  record.action = actionName(decision.action);
  record.violation = decision.violation();
  record.degraded = decision.degraded;
  record.degradedReason = decision.degradedReason;
  record.durabilityDegraded = decision.durabilityDegraded;
  record.bytesScanned = content.size();
  record.contentPreview = sec::redact(content).text;
  record.stages = stages;
  record.totalMs = decision.responseTimeMs;
  record.hits.reserve(decision.hits.size());
  for (const auto& hit : decision.hits) {
    record.hits.push_back(obs::DecisionTraceHit{
        hit.sourceName, hit.score, hit.threshold, hit.overlap});
  }
  record.violatingTags.assign(decision.violatingTags.begin(),
                              decision.violatingTags.end());
  record.labelsConsulted = decision.labelsConsulted;
  record.secretHits = decision.secretHits;
  decision.decisionId = recorder.record(std::move(record));
}

DecisionEngine::DecisionEngine(const BrowserFlowConfig& config,
                               flow::FlowTracker* tracker,
                               tdm::TdmPolicy* policy)
    : config_(config),
      mode_(config.mode),
      maxQueueDepth_(config.resilience.maxQueueDepth),
      decisionDeadlineMs_(config.resilience.decisionDeadlineMs),
      degradedMode_(config.resilience.degradedMode),
      tracker_(tracker),
      policy_(policy) {
  obs::MetricsRegistry& r = obs::registry();
  latency_ = &r.histogram("bf_decision_latency_ms",
                          "Wall-clock time per disclosure decision");
  queueDepth_ = &r.gauge("bf_decision_queue_depth",
                         "Decision requests waiting for the worker thread");
  actionCounters_[static_cast<int>(Decision::Action::kAllow)] =
      &r.counter("bf_decision_allow_total", "Decisions that allowed upload");
  actionCounters_[static_cast<int>(Decision::Action::kWarn)] =
      &r.counter("bf_decision_warn_total", "Decisions that warned");
  actionCounters_[static_cast<int>(Decision::Action::kBlock)] =
      &r.counter("bf_decision_block_total", "Decisions that blocked upload");
  actionCounters_[static_cast<int>(Decision::Action::kEncrypt)] = &r.counter(
      "bf_decision_encrypt_total", "Decisions that encrypted before upload");
  degradedTotal_ = &r.counter("bf_decision_degraded_total",
                              "Decisions answered without the full pipeline");
  shedTotal_ = &r.counter("bf_decision_shed_total",
                          "Async decisions shed by the bounded queue");
  deadlineTotal_ =
      &r.counter("bf_decision_deadline_expired_total",
                 "Queued decisions that overran their deadline");
  breakerTrips_ = &r.counter("bf_decision_breaker_trips_total",
                             "Disclosure-lookup circuit breaker trips");
  breakerOpenGauge_ = &r.gauge("bf_decision_breaker_open",
                               "1 while the lookup circuit breaker is open");
  // Calibrate the stage-timer tick clock now, not under a pipeline lock on
  // the first decision.
  util::warmFastTicks();
}

DecisionEngine::~DecisionEngine() {
  {
    util::MutexLock lock(queueMutex_);
    stopping_ = true;
  }
  queueCv_.notifyAll();
  if (worker_.joinable()) worker_.join();
  // The policy outlives the engine: settle any audit records still owed.
  util::MutexLock state(stateMutex_);
  flushPendingAuditsLocked();
}

Decision DecisionEngine::decide(const DecisionRequest& request) {
  const obs::TraceContext trace = resolveTrace(request.trace);
  obs::ScopedTraceContext traceScope(trace);
  obs::StageBreakdown stages;
  obs::ScopedStageCollector collector(&stages);
  Decision decision;
  {
    util::MutexLock lock(stateMutex_);
    decision = decideLocked(request);
  }
  // Provenance is reported after the pipeline lock is released: the
  // recorder's mutex ranks above it, and record construction has no
  // business inside the serialised section.
  recordDecisionProvenance(request.ingress, request.segmentName,
                           request.documentName, request.serviceId,
                           request.text, trace, stages, decision);
  return decision;
}

Decision DecisionEngine::buildDegraded(const char* reason) {
  Decision decision;
  decision.degraded = true;
  decision.degradedReason = reason;
  decision.action = degradedMode_.load(std::memory_order_relaxed) ==
                            DegradedMode::kFailClosed
                        ? Decision::Action::kBlock
                        : Decision::Action::kAllow;
  degradedTotal_->inc();
  actionCounters_[static_cast<int>(decision.action)]->inc();
  return decision;
}

Decision DecisionEngine::makeDegradedLocked(const DecisionRequest& request,
                                            const char* reason) {
  // Degradation is never silent: every degraded answer leaves an audit
  // record, so fail-open windows can be reviewed after the fact.
  Decision decision = buildDegraded(reason);
  policy_->recordDegradedDecision(request.segmentName, request.serviceId,
                                  reason);
  return decision;
}

void DecisionEngine::flushPendingAuditsLocked() {
  std::vector<PendingAudit> pending;
  {
    util::MutexLock lock(pendingAuditsMutex_);
    pending.swap(pendingAudits_);
  }
  for (const PendingAudit& p : pending) {
    policy_->recordDegradedDecision(p.segment, p.service, p.reason);
  }
}

bool DecisionEngine::breakerOpen() const {
  util::MutexLock lock(stateMutex_);
  return breakerIsOpen_;
}

void DecisionEngine::setResilience(const ResilienceConfig& resilience) {
  util::MutexLock lock(stateMutex_);
  config_.resilience = resilience;
  maxQueueDepth_.store(resilience.maxQueueDepth, std::memory_order_relaxed);
  decisionDeadlineMs_.store(resilience.decisionDeadlineMs,
                            std::memory_order_relaxed);
  degradedMode_.store(resilience.degradedMode, std::memory_order_relaxed);
}

Decision DecisionEngine::decideLocked(const DecisionRequest& request) {
  obs::ScopedSpan span("engine.decide");
  span.addAttr("bytes", request.text.size());
  const ResilienceConfig& res = config_.resilience;
  const bool breakerEnabled = res.breakerLatencyBudgetMs > 0.0;

  // While the breaker is open the disclosure lookup is presumed unhealthy:
  // skip the pipeline entirely and answer degraded, until the skip
  // allowance is spent — then fall through once as a half-open probe.
  if (breakerEnabled && breakerIsOpen_ && breakerSkipsRemaining_ > 0) {
    --breakerSkipsRemaining_;
    span.addAttr("degraded", 1);
    return makeDegradedLocked(request, "breaker-open: lookup skipped");
  }

  util::Stopwatch watch;
  Decision decision;

  // ---- Policy lookup module -------------------------------------------------
  // 1. The text now exists in this segment of this service: observe it.
  //    First observation assigns the service's Lc as explicit tags.
  const flow::SegmentId id = tracker_->observeSegment(
      request.kind, request.segmentName, request.documentName,
      request.serviceId, request.text);
  {
    obs::StageTimer policyTimer(obs::Stage::kPolicyEval);
    policy_->onSegmentObserved(request.segmentName, request.serviceId);
  }

  // 2. Find the sources this text discloses (cached when the fingerprint
  //    is unchanged — the per-keystroke fast path).
  util::Stopwatch lookupWatch;
  decision.hits = tracker_->sourcesForSegment(id);
  if (breakerEnabled) {
    const bool slow = lookupWatch.elapsedMillis() > res.breakerLatencyBudgetMs;
    if (breakerIsOpen_) {
      // Half-open probe: one healthy lookup closes the breaker, a slow one
      // re-arms the skip allowance.
      if (slow) {
        breakerSkipsRemaining_ = res.breakerOpenDecisions;
      } else {
        breakerIsOpen_ = false;
        consecutiveSlowLookups_ = 0;
        breakerOpenGauge_->set(0.0);
      }
    } else if (slow) {
      if (++consecutiveSlowLookups_ >= res.breakerTripThreshold) {
        breakerIsOpen_ = true;
        breakerSkipsRemaining_ = res.breakerOpenDecisions;
        breakerTrips_->inc();
        breakerOpenGauge_->set(1.0);
      }
    } else {
      consecutiveSlowLookups_ = 0;
    }
  }

  // 3. The segment's implicit tags become exactly the explicit tags of its
  //    CURRENT disclosing sources (paper S3.2): new disclosure attaches
  //    taint, and edits that removed all resemblance shed it.
  {
    obs::StageTimer policyTimer(obs::Stage::kPolicyEval);
    std::vector<std::string> sourceNames;
    sourceNames.reserve(decision.hits.size());
    for (const auto& hit : decision.hits) sourceNames.push_back(hit.sourceName);
    policy_->refreshImplicitTags(request.segmentName, sourceNames);

    // 3b. Exact-match pass for short secrets (S4.4): each hit attaches the
    //     secret's tag as an implicit tag, sharing the refresh lifecycle —
    //     deleting the secret from the text sheds the tag on the next edit.
    if (guard_ != nullptr) {
      for (const auto& hit : guard_->scan(request.text)) {
        policy_->addImplicitTag(request.segmentName, hit.tag);
        decision.secretHits.push_back(hit.name);
      }
    }

    // ---- Policy enforcement module -------------------------------------------
    const tdm::UploadDecision check =
        policy_->checkUpload(request.segmentName, request.serviceId);
    if (check.allowed) {
      decision.action = Decision::Action::kAllow;
    } else {
      decision.violatingTags = check.violatingTags;
      switch (mode_.load(std::memory_order_relaxed)) {
        case EnforcementMode::kWarn:
          decision.action = Decision::Action::kWarn;
          break;
        case EnforcementMode::kBlock:
          decision.action = Decision::Action::kBlock;
          break;
        case EnforcementMode::kEncrypt:
          decision.action = Decision::Action::kEncrypt;
          break;
      }
    }

    // Capture the labels the check consulted, but only when the flight
    // recorder will retain this decision — the TagSet copies are wasted
    // work otherwise.
    if (obs::provenanceEnabled() &&
        (obs::currentTrace().sampled || decision.violation())) {
      for (const auto& tag : check.label.effectiveTags()) {
        decision.labelsConsulted.push_back("segment:" + tag);
      }
      if (const tdm::ServiceInfo* svc =
              policy_->services().find(request.serviceId)) {
        for (const auto& tag : svc->privilege) {
          decision.labelsConsulted.push_back("privilege:" + tag);
        }
      }
    }
  }

  span.addAttr("segments_matched", decision.hits.size());
  decision.responseTimeMs = watch.elapsedMillis();
  latency_->observe(decision.responseTimeMs);
  actionCounters_[static_cast<int>(decision.action)]->inc();

  // Durability maintenance, driven from the decision path while stateMutex_
  // is still held (pipeline mutations quiesced — the contract
  // DurabilityManager::checkpoint requires). maintain() rolls due
  // checkpoints when healthy and paces backed-off repair attempts when
  // degraded; either way the decision is already made and is returned
  // regardless. Each boolean health flip writes exactly one audit record,
  // and every decision made inside a degraded window is flagged so the
  // flight recorder retains it.
  if (durability_ != nullptr) {
    (void)durability_->maintain(*tracker_);
    const bool durable = durability_->healthy();
    decision.durabilityDegraded = !durable;
    if (durable != lastDurabilityHealthy_) {
      lastDurabilityHealthy_ = durable;
      policy_->recordDegradedDecision(
          request.segmentName, request.serviceId,
          durable ? kDurabilityRestored : kDurabilityDegraded);
    }
  }
  return decision;
}

void DecisionEngine::setDurability(flow::DurabilityManager* durability) {
  util::MutexLock lock(stateMutex_);
  durability_ = durability;
}

bool DecisionEngine::durabilityHealthy() const {
  util::MutexLock lock(stateMutex_);
  return durability_ == nullptr || durability_->healthy();
}

std::future<Decision> DecisionEngine::decideAsync(DecisionRequest request) {
  // Resolve the trace at the ingress (caller) side: the worker thread has
  // no ambient context to inherit, and shed answers need an identity too.
  request.trace = resolveTrace(request.trace);
  std::promise<Decision> promise;
  std::future<Decision> future = promise.get_future();
  const int cap = maxQueueDepth_.load(std::memory_order_relaxed);
  bool shed = false;
  {
    util::MutexLock lock(queueMutex_);
    if (cap > 0 && queue_.size() >= static_cast<std::size_t>(cap)) {
      shed = true;
    } else {
      queue_.push_back(QueueItem{std::move(request), std::move(promise),
                                 util::fastTicks()});
      ++inFlight_;
      queueDepth_->set(static_cast<double>(queue_.size()));
      if (!workerStarted_) {
        worker_ = std::thread([this] { workerLoop(); });
        workerStarted_ = true;
      }
    }
  }
  if (shed) {
    // Load shedding: answer immediately rather than queueing without bound.
    // The audit record is buffered, NOT written inline — shedding happens
    // exactly when the pipeline (and stateMutex_) is saturated, and the
    // caller may even hold lockState() itself.
    shedTotal_->inc();
    Decision d = buildDegraded("shed: decision queue full");
    {
      util::MutexLock lock(pendingAuditsMutex_);
      pendingAudits_.push_back(PendingAudit{
          request.segmentName, request.serviceId, d.degradedReason});
    }
    // Shed decisions are always-keep in the flight recorder: no stages ran,
    // but the record answers "why did this decision degrade?".
    recordDecisionProvenance(request.ingress, request.segmentName,
                             request.documentName, request.serviceId,
                             request.text, request.trace,
                             obs::StageBreakdown{}, d);
    promise.set_value(std::move(d));
    return future;
  }
  queueCv_.notifyOne();
  return future;
}

void DecisionEngine::drain() {
  {
    util::MutexLock lock(queueMutex_);
    while (inFlight_ != 0) idleCv_.wait(queueMutex_);
  }
  // Settle audit records owed by shed decisions, so callers observing the
  // log after drain() see every degraded decision accounted for.
  util::MutexLock state(stateMutex_);
  flushPendingAuditsLocked();
}

void DecisionEngine::workerLoop() {
  for (;;) {
    QueueItem item;
    {
      util::MutexLock lock(queueMutex_);
      while (!stopping_ && queue_.empty()) queueCv_.wait(queueMutex_);
      if (stopping_ && queue_.empty()) return;
      item = std::move(queue_.front());
      queue_.pop_front();
      queueDepth_->set(static_cast<double>(queue_.size()));
    }
    // A request that already overran its deadline while queued is answered
    // degraded instead of burning pipeline time on a stale decision.
    const double deadlineMs =
        decisionDeadlineMs_.load(std::memory_order_relaxed);
    const std::uint64_t waitedNanos =
        util::fastTicksToNanos(util::fastTicks() - item.enqueuedTicks);
    const bool expired =
        deadlineMs > 0.0 && static_cast<double>(waitedNanos) / 1e6 > deadlineMs;
    const obs::TraceContext trace = resolveTrace(item.request.trace);
    obs::ScopedTraceContext traceScope(trace);
    obs::StageBreakdown stages;
    obs::ScopedStageCollector collector(&stages);
    obs::recordStage(obs::Stage::kQueueWait, waitedNanos);
    Decision d;
    {
      util::MutexLock lock(stateMutex_);
      flushPendingAuditsLocked();
      if (expired) {
        deadlineTotal_->inc();
        d = makeDegradedLocked(item.request, "deadline: queued past budget");
      } else {
        d = decideLocked(item.request);
      }
    }
    recordDecisionProvenance(item.request.ingress, item.request.segmentName,
                             item.request.documentName, item.request.serviceId,
                             item.request.text, trace, stages, d);
    item.promise.set_value(std::move(d));
    {
      util::MutexLock lock(queueMutex_);
      --inFlight_;
    }
    idleCv_.notifyAll();
  }
}

tdm::Label DecisionEngine::lookupLabelForText(
    sec::SensitiveView text, const std::string& excludeDocument) const {
  util::MutexLock lock(stateMutex_);
  tdm::Label label;
  for (const auto& hit : tracker_->checkText(text, excludeDocument)) {
    const tdm::Label* src = policy_->labelOf(hit.sourceName);
    if (src != nullptr) label.addImplicitAll(src->propagatableTags());
  }
  return label;
}

DecisionEngine::LatencySummary DecisionEngine::latencySummary() const {
  const obs::HistogramData data = latency_->data();
  LatencySummary out;
  out.count = data.count;
  out.meanMs = data.mean();
  out.minMs = data.min;
  out.maxMs = data.max;
  out.p50Ms = data.percentile(50.0);
  out.p95Ms = data.percentile(95.0);
  out.p99Ms = data.percentile(99.0);
  return out;
}

obs::HistogramData DecisionEngine::latencyData() const {
  return latency_->data();
}

void DecisionEngine::resetLatencyStats() { latency_->reset(); }

}  // namespace bf::core
