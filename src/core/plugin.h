// BrowserFlowPlugin — the browser-based middleware (paper Fig. 1, S5).
//
// Installed into the simulated browser as an Extension, it wires the four
// interception mechanisms of S5 into every tab:
//   1. Readability-style text extraction for static pages (scanPage);
//   2. submit listeners on every <form> ("form-based interception");
//   3. a MutationObserver over the document for dynamic editors
//      (Google-Docs-style paragraph divs);
//   4. a patched XMLHttpRequest prototype `send` for AJAX uploads.
//
// Violations are surfaced the way the paper's plug-in does — by colouring
// the paragraph background (a data-bf-state attribute plus inline style) —
// and enforced per the configured mode (warn / block / encrypt).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "browser/browser.h"
#include "core/decision_engine.h"
#include "core/service_adapter.h"
#include "crypto/sealer.h"
#include "sec/sensitive.h"
#include "flow/tracker.h"
#include "tdm/policy.h"
#include "util/clock.h"

namespace bf::core {

class BrowserFlowPlugin final : public browser::Extension {
 public:
  /// `clock` orders hash observations and audit records; not owned.
  BrowserFlowPlugin(BrowserFlowConfig config, util::Clock* clock);
  ~BrowserFlowPlugin() override;

  // ---- Extension hooks -------------------------------------------------------
  void onPageCreated(browser::Page& page) override;
  void onPageClosing(browser::Page& page) override;

  // ---- Administration / user facade ------------------------------------------
  [[nodiscard]] tdm::TdmPolicy& policy() noexcept { return policy_; }
  [[nodiscard]] flow::FlowTracker& tracker() noexcept { return tracker_; }
  [[nodiscard]] DecisionEngine& engine() noexcept { return engine_; }
  [[nodiscard]] crypto::Sealer& sealer() noexcept { return sealer_; }
  /// Exact-match guard for short secrets (paper S4.4). Register secrets
  /// with guard().addSecret(name, value, tag); uploads containing one get
  /// the tag attached and the usual flow rule applies.
  [[nodiscard]] SecretGuard& secretGuard() noexcept { return secretGuard_; }
  [[nodiscard]] const BrowserFlowConfig& config() const noexcept {
    return config_;
  }

  /// Switches the enforcement action at runtime (warn -> block rollouts).
  void setEnforcementMode(EnforcementMode mode) noexcept {
    config_.mode = mode;
    engine_.setMode(mode);
  }

  /// Extracts the main text of a loaded (static) page and registers it as
  /// content of that page's service — how existing documents seed the
  /// fingerprint database.
  void scanPage(browser::Page& page);

  /// Registers raw text as content of a service without a page (e.g. bulk
  /// preloading corpora in benches). `docName` must be unique. Optional
  /// per-segment disclosure thresholds override the tracker defaults
  /// (T_par / T_doc, paper S4.2 — set "by the author of a document and
  /// paragraph").
  void observeServiceDocument(
      const std::string& serviceId, const std::string& docName,
      sec::SensitiveView text,
      std::optional<double> paragraphThreshold = std::nullopt,
      std::optional<double> documentThreshold = std::nullopt);

  /// Installs a service-specific upload adapter for all tabs of `origin`
  /// (paper S4.4). Without one, the plug-in sniffs the body: JSON bodies
  /// use the generic JSON adapter, everything else the form adapter.
  void registerServiceAdapter(const std::string& origin,
                              std::unique_ptr<ServiceAdapter> adapter);

  /// User declassification (delegates to the TDM policy; audited).
  util::Status suppressTag(const std::string& user,
                           const std::string& segmentName,
                           const tdm::Tag& tag,
                           const std::string& justification);

  // ---- Introspection -----------------------------------------------------------
  struct Warning {
    std::string segmentName;
    std::string serviceId;
    Decision decision;
  };
  [[nodiscard]] const std::vector<Warning>& warnings() const noexcept {
    return warnings_;
  }
  void clearWarnings() { warnings_.clear(); }

  /// Attribute set on paragraph elements: "violation" or "clean".
  static constexpr const char* kStateAttr = "data-bf-state";
  static constexpr const char* kViolation = "violation";
  static constexpr const char* kClean = "clean";

  /// The segment name the plug-in assigned to a tracked paragraph node
  /// (empty if untracked).
  [[nodiscard]] std::string segmentNameOf(browser::Node* paragraph) const;

  /// Decide whether `text` may be uploaded to `serviceId`. Used by the XHR
  /// interception path and by offline tools (bfscan). Checks every
  /// paragraph of `text` and, for multi-paragraph uploads, the document
  /// granularity too (paper S4.1 tracks both independently). When a
  /// paragraph matches a registered segment of `documentName`, that
  /// segment's label — with any user suppressions — is authoritative.
  Decision decideUploadText(sec::SensitiveView text,
                            const std::string& documentName,
                            const std::string& serviceId);

  /// With config.asyncParagraphChecks, paragraph decisions run on the
  /// engine's worker thread ("asynchronously to the main request
  /// processing", paper S6.2) and their DOM highlights are applied when
  /// the browser is next idle — which this call simulates. Blocks until
  /// every queued decision completed and is applied. No-op in sync mode.
  void drainPendingDecisions();

 private:
  struct PageHooks {
    browser::Page* page = nullptr;
    std::unique_ptr<browser::MutationObserver> observer;
    /// Stable name per paragraph DOM node (stable across sibling shifts).
    std::map<browser::Node*, std::string> paragraphNames;
    std::set<browser::Node*> hookedForms;
    std::uint64_t nextNodeId = 0;
    /// Async mode: decisions awaiting highlight application.
    std::vector<std::pair<browser::Node*, std::future<Decision>>> pending;
    /// Async mode: document-level decisions awaiting warning collection.
    std::vector<std::future<Decision>> pendingDocs;
  };

  /// Applies a completed decision's highlight + warning for a paragraph.
  void applyParagraphDecision(browser::Node* paragraph,
                              const std::string& segmentName,
                              const std::string& serviceId, const Decision& d);

  void handleMutations(PageHooks& hooks,
                       const std::vector<browser::MutationRecord>& records);
  void hookNewForms(PageHooks& hooks);
  void installXhrInterceptor(browser::Page& page);
  void installFormListener(PageHooks& hooks, browser::Node* form);

  /// Decides for one paragraph node and applies the highlight.
  Decision checkParagraphNode(PageHooks& hooks, browser::Node* paragraph);

  /// Is `node` (or an ancestor) a tracked paragraph container? Returns the
  /// container or nullptr.
  [[nodiscard]] static browser::Node* paragraphContainerOf(
      browser::Node* node);

  /// Form path: registers the form content as the page's draft segments
  /// (text in a service's tab is "observed in" that service), runs the full
  /// per-paragraph + document-level decision pipeline, and prunes stale
  /// draft paragraphs from earlier, longer drafts. Draft segment names are
  /// "<url>/draft#p<i>", which is what suppressTag() takes to declassify
  /// form content.
  Decision decideFormDraft(browser::Page& page, sec::SensitiveView text);

  /// `content` is the violating text; only its redact() preview reaches
  /// the audit trail (justification field) — never the raw characters.
  void recordViolation(const std::string& segmentName,
                       const std::string& serviceId, const Decision& d,
                       sec::SensitiveView content);

  /// Adapter used for a request to `origin`: the registered one, else a
  /// generic adapter chosen by body shape.
  [[nodiscard]] const ServiceAdapter& adapterFor(
      const std::string& origin, const browser::HttpRequest& request) const;

  BrowserFlowConfig config_;
  util::Clock* clock_;
  flow::FlowTracker tracker_;
  tdm::TdmPolicy policy_;
  DecisionEngine engine_;
  crypto::Sealer sealer_;
  SecretGuard secretGuard_;
  std::vector<std::unique_ptr<PageHooks>> hooks_;
  std::vector<Warning> warnings_;
  std::map<std::string, std::unique_ptr<ServiceAdapter>> adapters_;
  FormEncodedAdapter formAdapter_;
  JsonFieldAdapter jsonAdapter_;
};

}  // namespace bf::core
