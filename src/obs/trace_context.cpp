#include "obs/trace_context.h"

#include <atomic>

#include "util/hashing.h"

namespace bf::obs {
namespace {

std::atomic<std::uint64_t> g_nextTraceSeed{1};
std::atomic<std::uint64_t> g_nextSpanId{1};
std::atomic<std::uint32_t> g_sampleEvery{16};

}  // namespace

namespace detail {
thread_local TraceContext t_currentTrace;
}  // namespace detail

TraceContext TraceContext::child() const noexcept {
  TraceContext c = *this;
  c.spanId = allocateSpanId();
  return c;
}

TraceContext TraceContext::start() noexcept {
  const std::uint64_t seed =
      g_nextTraceSeed.fetch_add(1, std::memory_order_relaxed);
  TraceContext ctx;
  // mix64 is a bijection mapping only 0 to 0, so seeds >= 1 always yield a
  // nonzero (i.e. valid) trace id.
  ctx.traceId = util::mix64(seed);
  ctx.spanId = allocateSpanId();
  const std::uint32_t every = g_sampleEvery.load(std::memory_order_relaxed);
  ctx.sampled = every != 0 && seed % every == 0;
  return ctx;
}

void setTraceSampleEvery(std::uint32_t every) noexcept {
  g_sampleEvery.store(every, std::memory_order_relaxed);
}

std::uint32_t traceSampleEvery() noexcept {
  return g_sampleEvery.load(std::memory_order_relaxed);
}

std::uint64_t allocateSpanId() noexcept {
  return g_nextSpanId.fetch_add(1, std::memory_order_relaxed);
}

ScopedTraceContext::ScopedTraceContext(const TraceContext& ctx) noexcept
    : saved_(detail::t_currentTrace) {
  detail::t_currentTrace = ctx;
}

ScopedTraceContext::~ScopedTraceContext() { detail::t_currentTrace = saved_; }

TraceContext ingressTrace() noexcept {
  const TraceContext& current = detail::t_currentTrace;
  return current.valid() ? current.child() : TraceContext::start();
}

}  // namespace bf::obs
