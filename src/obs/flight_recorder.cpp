#include "obs/flight_recorder.h"

#include "obs/metrics.h"

namespace bf::obs {
namespace {

struct RecorderMetrics {
  Counter* decisions = nullptr;
  Counter* retained = nullptr;
};

const RecorderMetrics& recorderMetrics() {
  static const RecorderMetrics m = [] {
    RecorderMetrics metrics;
    metrics.decisions = &registry().counter(
        "bf_flight_decisions_total", "Decisions assigned a provenance id");
    metrics.retained = &registry().counter(
        "bf_flight_retained_total", "Decision traces retained in the ring");
    return metrics;
  }();
  return m;
}

}  // namespace

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.resize(capacity_);
}

std::uint64_t FlightRecorder::nextDecisionId() noexcept {
  recorderMetrics().decisions->inc();
  return nextId_.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t FlightRecorder::record(DecisionTrace trace) {
  if (trace.decisionId == 0) trace.decisionId = nextDecisionId();
  const std::uint64_t id = trace.decisionId;
  const bool keep = trace.degraded || trace.durabilityDegraded ||
                    trace.violation || trace.sampled;
  if (keep) {
    recorderMetrics().retained->inc();
    util::MutexLock lock(mutex_);
    ring_[retained_ % capacity_] = std::move(trace);
    ++retained_;
  }
  return id;
}

std::optional<DecisionTrace> FlightRecorder::explain(
    std::uint64_t decisionId) const {
  util::MutexLock lock(mutex_);
  const std::uint64_t kept = retained_ < capacity_ ? retained_ : capacity_;
  for (std::uint64_t i = 0; i < kept; ++i) {
    const DecisionTrace& t = ring_[(retained_ - 1 - i) % capacity_];
    if (t.decisionId == decisionId) return t;
  }
  return std::nullopt;
}

std::optional<DecisionTrace> FlightRecorder::explainByTrace(
    std::uint64_t traceId) const {
  if (traceId == 0) return std::nullopt;
  util::MutexLock lock(mutex_);
  const std::uint64_t kept = retained_ < capacity_ ? retained_ : capacity_;
  for (std::uint64_t i = 0; i < kept; ++i) {
    const DecisionTrace& t = ring_[(retained_ - 1 - i) % capacity_];
    if (t.traceId == traceId) return t;
  }
  return std::nullopt;
}

std::vector<DecisionTrace> FlightRecorder::recent() const {
  util::MutexLock lock(mutex_);
  std::vector<DecisionTrace> out;
  const std::uint64_t kept = retained_ < capacity_ ? retained_ : capacity_;
  out.reserve(kept);
  const std::uint64_t begin = retained_ - kept;
  for (std::uint64_t i = 0; i < kept; ++i) {
    out.push_back(ring_[(begin + i) % capacity_]);
  }
  return out;
}

void FlightRecorder::annotateRetry(std::uint64_t traceId,
                                   std::uint32_t attempts, double backoffMs,
                                   bool exhausted) {
  if (traceId == 0) return;
  util::MutexLock lock(mutex_);
  const std::uint64_t kept = retained_ < capacity_ ? retained_ : capacity_;
  for (std::uint64_t i = 0; i < kept; ++i) {
    DecisionTrace& t = ring_[(retained_ - 1 - i) % capacity_];
    if (t.traceId == traceId) {
      t.retryAttempts = attempts;
      t.retryBackoffMs = backoffMs;
      t.retryExhausted = exhausted;
    }
  }
}

void FlightRecorder::setCapacity(std::size_t capacity) {
  util::MutexLock lock(mutex_);
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_.assign(capacity_, DecisionTrace{});
  retained_ = 0;
}

void FlightRecorder::clear() {
  util::MutexLock lock(mutex_);
  ring_.assign(capacity_, DecisionTrace{});
  retained_ = 0;
}

std::uint64_t FlightRecorder::lastDecisionId() const noexcept {
  return nextId_.load(std::memory_order_relaxed) - 1;
}

std::uint64_t FlightRecorder::retainedTotal() const {
  util::MutexLock lock(mutex_);
  return retained_;
}

}  // namespace bf::obs
