// Per-stage latency attribution for the decision path.
//
// Every decision passes through a fixed set of stages (normalize,
// fingerprint, tracker lock wait, tracker lookup, policy eval, WAL append,
// queue wait). recordStage() accumulates a stage duration into the
// thread's ScopedStageCollector (the per-decision StageBreakdown that ends
// up in the flight recorder); when the collector scope closes it flushes
// each touched stage into the matching process-wide `bf_stage_*_us`
// histogram — attaching the trace id as the bucket's exemplar, so a p99
// spike points at a concrete recorded trace. Collector flushes are
// head-sampled along with the trace (an unbiased subsample, and every
// exemplar then resolves in the flight recorder); recordStage() calls made
// with no collector installed observe their histogram directly.
//
// Timing uses util::fastTicks() (rdtsc on x86-64): a StageTimer costs two
// tick reads plus one thread-local add, and the tick reads are skipped
// outright for traces that lost the head-sampling coin toss. Everything
// compiles down to nearly nothing when provenance is disabled via
// setProvenanceEnabled(false) — the kill switch the <3% overhead budget
// test toggles.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "obs/trace_context.h"
#include "util/clock.h"

namespace bf::obs {

enum class Stage : std::uint8_t {
  kNormalize = 0,
  kFingerprint,
  kTrackerLockWait,
  kTrackerLookup,
  kPolicyEval,
  kWalAppend,
  kQueueWait,
};
inline constexpr std::size_t kStageCount = 7;

/// Stable lowercase stage name ("normalize", "tracker_lock_wait", ...).
[[nodiscard]] const char* stageName(Stage stage) noexcept;

/// Per-decision accumulator: total nanoseconds spent in each stage.
struct StageBreakdown {
  std::uint64_t nanos[kStageCount] = {};

  [[nodiscard]] std::uint64_t total() const noexcept {
    std::uint64_t t = 0;
    for (std::size_t i = 0; i < kStageCount; ++i) t += nanos[i];
    return t;
  }
};

namespace detail {
/// Backing flag for the provenance kill switch; treat as private.
extern std::atomic<bool> g_provenanceEnabled;
}  // namespace detail

/// Process-wide provenance kill switch (default ON). When off, stage
/// timers, flight-recorder retention, and decision-id stamping all become
/// near-free no-ops.
void setProvenanceEnabled(bool enabled) noexcept;
[[nodiscard]] inline bool provenanceEnabled() noexcept {
  return detail::g_provenanceEnabled.load(std::memory_order_relaxed);
}

namespace detail {
/// The thread's installed per-decision accumulator (see
/// ScopedStageCollector). Exposed so the stage-timer fast path — one
/// thread-local add — inlines into callers; treat as private to this
/// header.
extern thread_local StageBreakdown* t_stageCollector;
/// Collector-less path: observes the stage histogram directly.
void observeStageDirect(Stage stage, std::uint64_t nanos) noexcept;
}  // namespace detail

/// Records `nanos` against `stage`: adds into the thread's collector when
/// one is installed (flushed to the histograms at scope exit), otherwise
/// observes the stage histogram directly. No-op when provenance is
/// disabled.
inline void recordStage(Stage stage, std::uint64_t nanos) noexcept {
  if (!provenanceEnabled()) return;
  const std::size_t i = static_cast<std::size_t>(stage);
  if (i >= kStageCount) return;
  if (detail::t_stageCollector != nullptr) {
    detail::t_stageCollector->nanos[i] += nanos;
    return;
  }
  detail::observeStageDirect(stage, nanos);
}

/// Manual variant of StageTimer for sections that cannot be a scope (lock
/// waits): stageStart() returns 0 when provenance is off — or when the
/// ambient trace exists but is not head-sampled, so the tick reads
/// themselves are paid only on the decisions whose breakdown will be
/// flushed (chaos/degraded tests pin setTraceSampleEvery(1) to time every
/// decision). stageEnd() with a 0 start is a no-op.
[[nodiscard]] inline std::uint64_t stageStart() noexcept {
  if (!provenanceEnabled()) return 0;
  const TraceContext& trace = currentTrace();
  if (trace.valid() && !trace.sampled) return 0;
  return util::fastTicks();
}
inline void stageEnd(Stage stage, std::uint64_t startTicks) noexcept {
  if (startTicks == 0) return;
  const std::uint64_t nanos =
      util::fastTicksToNanos(util::fastTicks() - startTicks);
  const std::size_t i = static_cast<std::size_t>(stage);
  // stageStart() already verified provenance was on; a races-with-toggle
  // stray sample is harmless.
  if (detail::t_stageCollector != nullptr) {
    detail::t_stageCollector->nanos[i] += nanos;
    return;
  }
  detail::observeStageDirect(stage, nanos);
}

/// RAII stage timer: measures the scope with fastTicks and records on exit.
class StageTimer {
 public:
  explicit StageTimer(Stage stage) noexcept
      : stage_(stage), startTicks_(stageStart()) {}
  ~StageTimer() { stageEnd(stage_, startTicks_); }

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

 private:
  Stage stage_;
  std::uint64_t startTicks_;
};

/// Installs `breakdown` as the calling thread's stage accumulator for the
/// scope's lifetime (restoring any previous one): every recordStage() on
/// this thread adds into it. The engine installs one per decision. On
/// destruction, if the ambient trace is head-sampled (or there is no
/// ambient trace), each touched stage is flushed into its `bf_stage_*_us`
/// histogram with the trace id as exemplar.
class ScopedStageCollector {
 public:
  explicit ScopedStageCollector(StageBreakdown* breakdown) noexcept;
  ~ScopedStageCollector();

  ScopedStageCollector(const ScopedStageCollector&) = delete;
  ScopedStageCollector& operator=(const ScopedStageCollector&) = delete;

 private:
  StageBreakdown* breakdown_;
  StageBreakdown* saved_;
};

}  // namespace bf::obs
