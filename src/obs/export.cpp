#include "obs/export.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "util/json_text.h"

namespace bf::obs {

namespace {

/// Shortest round-trippable-enough rendering: integers without a decimal
/// point, everything else via %g (matches Prometheus client conventions
/// closely enough for golden tests).
std::string formatDouble(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v)) && v > -1e15 &&
      v < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%g", v);
  }
  return buf;
}

const char* kindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

std::string escapeWith(std::string_view in, bool escapeQuote) {
  std::string out;
  out.reserve(in.size());
  for (const char c : in) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '"':
        if (escapeQuote) {
          out += "\\\"";
          break;
        }
        [[fallthrough]];
      default:
        out += c;
    }
  }
  return out;
}

void appendStringArray(std::ostringstream& os, const char* key,
                       const std::vector<std::string>& values) {
  os << ",\"" << key << "\":[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) os << ",";
    os << "\"" << util::escapeJsonString(values[i]) << "\"";
  }
  os << "]";
}

}  // namespace

std::string escapeLabelValue(std::string_view value) {
  return escapeWith(value, /*escapeQuote=*/true);
}

std::string escapeHelpText(std::string_view help) {
  return escapeWith(help, /*escapeQuote=*/false);
}

std::string toPrometheusText(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  for (const MetricValue& m : snapshot.metrics) {
    if (!m.help.empty()) {
      os << "# HELP " << m.name << " " << escapeHelpText(m.help) << "\n";
    }
    os << "# TYPE " << m.name << " " << kindName(m.kind) << "\n";
    switch (m.kind) {
      case MetricKind::kCounter:
        os << m.name << " " << m.counterValue << "\n";
        break;
      case MetricKind::kGauge:
        os << m.name << " " << formatDouble(m.gaugeValue) << "\n";
        break;
      case MetricKind::kHistogram: {
        const HistogramData& h = m.histogram;
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.bounds.size(); ++i) {
          cumulative += h.bucketCounts[i];
          os << m.name << "_bucket{le=\""
             << escapeLabelValue(formatDouble(h.bounds[i])) << "\"} "
             << cumulative << "\n";
        }
        // The +Inf bucket must stay cumulative-monotonic even when a
        // snapshot races concurrent observers (relaxed bucket adds can be
        // visible before the matching count_ add).
        cumulative += h.bucketCounts[h.bounds.size()];
        os << m.name << "_bucket{le=\"+Inf\"} "
           << (h.count > cumulative ? h.count : cumulative) << "\n";
        os << m.name << "_sum " << formatDouble(h.sum) << "\n";
        os << m.name << "_count " << h.count << "\n";
        break;
      }
    }
  }
  return os.str();
}

std::string toJson(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  os << "{\"metrics\":[";
  bool first = true;
  for (const MetricValue& m : snapshot.metrics) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << util::escapeJsonString(m.name) << "\",\"kind\":\""
       << kindName(m.kind) << "\"";
    if (!m.help.empty()) {
      os << ",\"help\":\"" << util::escapeJsonString(m.help) << "\"";
    }
    switch (m.kind) {
      case MetricKind::kCounter:
        os << ",\"value\":" << m.counterValue;
        break;
      case MetricKind::kGauge:
        os << ",\"value\":" << formatDouble(m.gaugeValue);
        break;
      case MetricKind::kHistogram: {
        const HistogramData& h = m.histogram;
        os << ",\"count\":" << h.count << ",\"sum\":" << formatDouble(h.sum)
           << ",\"min\":" << formatDouble(h.min)
           << ",\"max\":" << formatDouble(h.max) << ",\"buckets\":[";
        for (std::size_t i = 0; i < h.bounds.size(); ++i) {
          if (i > 0) os << ",";
          os << "{\"le\":" << formatDouble(h.bounds[i])
             << ",\"count\":" << h.bucketCounts[i];
          if (i < h.exemplars.size() && h.exemplars[i] != 0) {
            os << ",\"exemplar\":" << h.exemplars[i];
          }
          os << "}";
        }
        os << "],\"overflow\":" << h.bucketCounts[h.bounds.size()];
        if (h.exemplars.size() > h.bounds.size() &&
            h.exemplars[h.bounds.size()] != 0) {
          os << ",\"overflow_exemplar\":" << h.exemplars[h.bounds.size()];
        }
        break;
      }
    }
    os << "}";
  }
  os << "]}";
  return os.str();
}

std::string toJson(const DecisionTrace& trace) {
  std::ostringstream os;
  os << "{\"decision_id\":" << trace.decisionId
     << ",\"trace_id\":" << trace.traceId << ",\"span_id\":" << trace.spanId
     << ",\"sampled\":" << (trace.sampled ? "true" : "false")
     << ",\"ingress\":\"" << util::escapeJsonString(trace.ingress)
     << "\",\"segment\":\"" << util::escapeJsonString(trace.segmentName)
     << "\",\"document\":\"" << util::escapeJsonString(trace.documentName)
     << "\",\"service\":\"" << util::escapeJsonString(trace.serviceId)
     << "\",\"action\":\"" << util::escapeJsonString(trace.action)
     << "\",\"violation\":" << (trace.violation ? "true" : "false")
     << ",\"degraded\":" << (trace.degraded ? "true" : "false")
     << ",\"degraded_reason\":\""
     << util::escapeJsonString(trace.degradedReason)
     << "\",\"durability_degraded\":"
     << (trace.durabilityDegraded ? "true" : "false")
     << ",\"bytes_scanned\":" << trace.bytesScanned
     << ",\"total_ms\":" << formatDouble(trace.totalMs) << ",\"stages\":{";
  for (std::size_t i = 0; i < kStageCount; ++i) {
    if (i > 0) os << ",";
    os << "\"" << stageName(static_cast<Stage>(i))
       << "_ns\":" << trace.stages.nanos[i];
  }
  os << "},\"hits\":[";
  for (std::size_t i = 0; i < trace.hits.size(); ++i) {
    const DecisionTraceHit& h = trace.hits[i];
    if (i > 0) os << ",";
    os << "{\"source\":\"" << util::escapeJsonString(h.sourceName)
       << "\",\"score\":" << formatDouble(h.score)
       << ",\"threshold\":" << formatDouble(h.threshold)
       << ",\"overlap\":" << h.overlap << "}";
  }
  os << "]";
  appendStringArray(os, "violating_tags", trace.violatingTags);
  appendStringArray(os, "labels_consulted", trace.labelsConsulted);
  appendStringArray(os, "secret_hits", trace.secretHits);
  // contentPreview is already the redacted form (sec::redact output); the
  // raw text never reaches a DecisionTrace.
  os << ",\"content_preview\":\""
     << util::escapeJsonString(trace.contentPreview) << "\"";
  os << ",\"retry\":{\"attempts\":" << trace.retryAttempts
     << ",\"backoff_ms\":" << formatDouble(trace.retryBackoffMs)
     << ",\"exhausted\":" << (trace.retryExhausted ? "true" : "false") << "}}";
  return os.str();
}

std::string toJson(const FlightRecorder& recorder) {
  std::ostringstream os;
  os << "{\"schema\":\"bf-flight-v1\",\"decisions\":[";
  bool first = true;
  for (const DecisionTrace& t : recorder.recent()) {
    if (!first) os << ",";
    first = false;
    os << toJson(t);
  }
  os << "]}";
  return os.str();
}

}  // namespace bf::obs
