#include "obs/export.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "util/json_text.h"

namespace bf::obs {

namespace {

/// Shortest round-trippable-enough rendering: integers without a decimal
/// point, everything else via %g (matches Prometheus client conventions
/// closely enough for golden tests).
std::string formatDouble(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v)) && v > -1e15 &&
      v < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%g", v);
  }
  return buf;
}

const char* kindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

}  // namespace

std::string toPrometheusText(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  for (const MetricValue& m : snapshot.metrics) {
    if (!m.help.empty()) os << "# HELP " << m.name << " " << m.help << "\n";
    os << "# TYPE " << m.name << " " << kindName(m.kind) << "\n";
    switch (m.kind) {
      case MetricKind::kCounter:
        os << m.name << " " << m.counterValue << "\n";
        break;
      case MetricKind::kGauge:
        os << m.name << " " << formatDouble(m.gaugeValue) << "\n";
        break;
      case MetricKind::kHistogram: {
        const HistogramData& h = m.histogram;
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.bounds.size(); ++i) {
          cumulative += h.bucketCounts[i];
          os << m.name << "_bucket{le=\"" << formatDouble(h.bounds[i])
             << "\"} " << cumulative << "\n";
        }
        os << m.name << "_bucket{le=\"+Inf\"} " << h.count << "\n";
        os << m.name << "_sum " << formatDouble(h.sum) << "\n";
        os << m.name << "_count " << h.count << "\n";
        break;
      }
    }
  }
  return os.str();
}

std::string toJson(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  os << "{\"metrics\":[";
  bool first = true;
  for (const MetricValue& m : snapshot.metrics) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << util::escapeJsonString(m.name) << "\",\"kind\":\""
       << kindName(m.kind) << "\"";
    if (!m.help.empty()) {
      os << ",\"help\":\"" << util::escapeJsonString(m.help) << "\"";
    }
    switch (m.kind) {
      case MetricKind::kCounter:
        os << ",\"value\":" << m.counterValue;
        break;
      case MetricKind::kGauge:
        os << ",\"value\":" << formatDouble(m.gaugeValue);
        break;
      case MetricKind::kHistogram: {
        const HistogramData& h = m.histogram;
        os << ",\"count\":" << h.count << ",\"sum\":" << formatDouble(h.sum)
           << ",\"min\":" << formatDouble(h.min)
           << ",\"max\":" << formatDouble(h.max) << ",\"buckets\":[";
        for (std::size_t i = 0; i < h.bounds.size(); ++i) {
          if (i > 0) os << ",";
          os << "{\"le\":" << formatDouble(h.bounds[i])
             << ",\"count\":" << h.bucketCounts[i] << "}";
        }
        os << "],\"overflow\":" << h.bucketCounts[h.bounds.size()];
        break;
      }
    }
    os << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace bf::obs
