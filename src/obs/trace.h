// bf::obs — lightweight scoped trace spans.
//
// BF_SPAN("flow.query") opens a span for the enclosing scope; when the
// scope exits the span's duration is recorded into a bounded ring buffer
// (oldest entries overwritten). Spans nest: each record carries its depth
// and its parent's span id, maintained per thread, so a dump of the buffer
// reconstructs call trees like
//
//   engine.decide
//   ├── flow.observe
//   └── flow.query
//
// Tracing is OFF by default (one relaxed atomic load per BF_SPAN — free on
// the hot path) and is enabled programmatically or with BF_TRACE=1 in the
// environment. Span names must be string literals (or otherwise outlive
// the trace log): only the pointer is stored.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace bf::obs {

/// One span attribute: a string-literal key and a numeric value (string
/// values are recorded as hashes — see ScopedSpan::addAttr).
struct SpanAttr {
  const char* key = "";
  std::uint64_t value = 0;
};

/// One completed span.
struct SpanRecord {
  static constexpr std::size_t kMaxAttrs = 4;

  const char* name = "";
  std::uint64_t id = 0;        ///< unique per process, 1-based
  std::uint64_t parentId = 0;  ///< 0 for root spans
  std::uint64_t traceId = 0;   ///< ambient TraceContext at open; 0 if none
  std::uint64_t seq = 0;       ///< global record order, 1-based (see record())
  std::uint32_t threadId = 0;  ///< small per-thread ordinal, 1-based
  std::uint32_t depth = 0;     ///< 0 for root spans
  std::uint64_t startNanos = 0;
  std::uint64_t durationNanos = 0;
  SpanAttr attrs[kMaxAttrs];
  std::uint32_t attrCount = 0;
};

class TraceLog {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  /// The process-wide trace log (reads BF_TRACE on first use).
  [[nodiscard]] static TraceLog& instance();

  explicit TraceLog(std::size_t capacity = kDefaultCapacity);

  void setEnabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Replaces the buffer with an empty one of `capacity` slots.
  void setCapacity(std::size_t capacity);

  /// Records a completed span. The log assigns `span.seq` from a global
  /// monotonic sequence under the same mutex hold as the ring write, so
  /// spans recorded by concurrent threads can be reassembled in order:
  /// events() is always seq-ascending with no gaps among survivors.
  void record(const SpanRecord& span);

  /// Completed spans, oldest first (at most `capacity` of them).
  [[nodiscard]] std::vector<SpanRecord> events() const;

  /// Total spans ever recorded (including overwritten ones).
  [[nodiscard]] std::uint64_t totalRecorded() const;
  /// Spans lost to ring-buffer wraparound.
  [[nodiscard]] std::uint64_t droppedCount() const;

  void clear();

  /// Indented single-line-per-span rendering of `events()` for logs/tests.
  [[nodiscard]] std::string dump() const;

 private:
  std::atomic<bool> enabled_{false};
  // Near-innermost rank: spans close (and record here) under any pipeline
  // lock — engine state, tracker, fault injector.
  mutable util::Mutex mutex_{util::kRankTrace, "TraceLog.mutex_"};
  std::vector<SpanRecord> ring_ BF_GUARDED_BY(mutex_);
  std::size_t capacity_ BF_GUARDED_BY(mutex_);
  std::uint64_t total_ BF_GUARDED_BY(mutex_) = 0;  // next write: total_ % capacity_
};

/// RAII span. Use via BF_SPAN; constructing it directly is fine too (and is
/// the way to attach attributes). A span opened at thread depth 0 while a
/// TraceContext is installed (obs/trace_context.h) parent-links to the
/// context's span id, stitching cross-thread flows together.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) noexcept;
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches a numeric attribute (no-op when tracing is disabled or the
  /// inline attribute slots are full). `key` must be a string literal.
  void addAttr(const char* key, std::uint64_t value) noexcept;

 private:
  SpanRecord span_;
  std::uint64_t savedParent_ = 0;
  std::uint32_t savedDepth_ = 0;
  bool active_ = false;
};

}  // namespace bf::obs

#define BF_OBS_CONCAT2(a, b) a##b
#define BF_OBS_CONCAT(a, b) BF_OBS_CONCAT2(a, b)
#define BF_SPAN(name) \
  ::bf::obs::ScopedSpan BF_OBS_CONCAT(bf_span_, __LINE__)(name)
