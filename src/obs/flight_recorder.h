// Decision flight recorder: the last N complete decision traces, retained
// in a lock-rank-compliant ring for post-hoc explanation.
//
// Retention is head-sampled — every traceSampleEvery()-th trace keeps its
// full record — plus an always-keep rule for anything a human will ask
// about: blocked/warned (violation), degraded, and shed decisions. All
// other decisions only consume a decision id (one atomic add), which keeps
// the recorder off the hot path.
//
// FlightRecorder::explain(decisionId) answers "why was this upload allowed
// or blocked?" with the structured record: ingress, matched segments with
// disclosure scores vs thresholds, policy labels consulted, per-stage
// durations, and the retry/fault history cloud::Transport annotates after
// the fact. src/obs/export.cpp renders records as JSON for
// scripts/bf_explain.py.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/stage.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace bf::obs {

/// One matched disclosing source: the "why" of a verdict.
struct DecisionTraceHit {
  std::string sourceName;
  double score = 0.0;      ///< disclosure score of the match
  double threshold = 0.0;  ///< threshold it was compared against
  std::uint64_t overlap = 0;
};

/// The complete causal record of one decision: ingress → stages → verdict.
struct DecisionTrace {
  std::uint64_t decisionId = 0;  ///< key for explain(); recorder-assigned
  std::uint64_t traceId = 0;     ///< links spans + histogram exemplars
  std::uint64_t spanId = 0;
  bool sampled = false;  ///< head-sampling verdict of the trace

  std::string ingress;  ///< "plugin.paragraph", "dlp.appliance", ...
  std::string segmentName;
  std::string documentName;
  std::string serviceId;

  std::string action = "allow";  ///< "allow"/"warn"/"block"/"encrypt"/"flag"
  bool violation = false;
  bool degraded = false;
  std::string degradedReason;
  /// The durability manager was unhealthy when this decision was made
  /// (core/decision_engine.h kDurabilityDegraded). Always retained.
  bool durabilityDegraded = false;

  std::uint64_t bytesScanned = 0;
  StageBreakdown stages;  ///< per-stage nanoseconds
  double totalMs = 0.0;

  std::vector<DecisionTraceHit> hits;  ///< matched segments
  std::vector<std::string> violatingTags;
  std::vector<std::string> labelsConsulted;
  std::vector<std::string> secretHits;
  /// Redacted preview of the checked content (sec::redact output: a few
  /// edge characters plus the length). NEVER raw text — the sec type layer
  /// plus scripts/bftaint.py enforce that only declassified forms land
  /// here.
  std::string contentPreview;

  // Retry/fault history, annotated by cloud::Transport once the send that
  // carried this decision's flow settles.
  std::uint32_t retryAttempts = 0;
  double retryBackoffMs = 0.0;
  bool retryExhausted = false;
};

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 256;

  /// The process-wide recorder every decision path reports to.
  [[nodiscard]] static FlightRecorder& instance();

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  /// Allocates the next decision id (lock-free). The fast path for
  /// decisions that are not retained: they still get a stable id so logs
  /// and futures can reference them.
  std::uint64_t nextDecisionId() noexcept;

  /// Retains `trace` (assigning a decision id if it has none) when its
  /// sampling bit or always-keep rule says so; otherwise only consumes an
  /// id. Returns the decision id either way.
  std::uint64_t record(DecisionTrace trace);

  /// The retained record for `decisionId`, if it is still in the ring.
  [[nodiscard]] std::optional<DecisionTrace> explain(
      std::uint64_t decisionId) const;
  /// The newest retained record belonging to `traceId`, if any.
  [[nodiscard]] std::optional<DecisionTrace> explainByTrace(
      std::uint64_t traceId) const;

  /// All retained records, oldest first.
  [[nodiscard]] std::vector<DecisionTrace> recent() const;

  /// Attaches retry history to every retained record of `traceId` (a send
  /// may carry several decisions — e.g. one per upload field).
  void annotateRetry(std::uint64_t traceId, std::uint32_t attempts,
                     double backoffMs, bool exhausted);

  /// Replaces the ring with an empty one of `capacity` slots.
  void setCapacity(std::size_t capacity);
  void clear();

  /// Highest decision id handed out so far (0 before the first).
  [[nodiscard]] std::uint64_t lastDecisionId() const noexcept;
  /// Total records ever retained (including ones since overwritten).
  [[nodiscard]] std::uint64_t retainedTotal() const;

 private:
  // Rank 88: records are written after the engine releases its pipeline
  // locks, but explain()/annotateRetry() may run under outer locks (e.g.
  // the transport annotates while callers hold nothing below rank 88).
  mutable util::Mutex mutex_{util::kRankFlightRecorder,
                             "FlightRecorder.mutex_"};
  std::vector<DecisionTrace> ring_ BF_GUARDED_BY(mutex_);
  std::size_t capacity_ BF_GUARDED_BY(mutex_);
  std::uint64_t retained_ BF_GUARDED_BY(mutex_) = 0;  // next: retained_ % cap
  std::atomic<std::uint64_t> nextId_{1};
};

}  // namespace bf::obs
