#include "obs/stage.h"

#include <atomic>

#include "obs/metrics.h"
#include "obs/trace_context.h"

namespace bf::obs {

namespace detail {
std::atomic<bool> g_provenanceEnabled{true};
thread_local StageBreakdown* t_stageCollector = nullptr;
}  // namespace detail

namespace {

/// Microsecond ladder for stage durations: individual stages run from
/// sub-microsecond (WAL append to a warm buffer) to tens of milliseconds
/// (tracker lookups over large stores).
std::vector<double> stageBucketsUs() {
  return {1.0,    2.0,    5.0,    10.0,   25.0,    50.0,    100.0,   250.0,
          500.0,  1000.0, 2500.0, 5000.0, 10000.0, 25000.0, 50000.0, 100000.0};
}

struct StageMetrics {
  Histogram* hist[kStageCount] = {};
};

const StageMetrics& stageMetrics() {
  static const StageMetrics metrics = [] {
    // Calibrate the tick clock eagerly, outside any caller's lock hold.
    util::warmFastTicks();
    StageMetrics m;
    for (std::size_t i = 0; i < kStageCount; ++i) {
      const Stage stage = static_cast<Stage>(i);
      m.hist[i] = &registry().histogram(
          std::string("bf_stage_") + stageName(stage) + "_us",
          std::string("Decision-path time in the ") + stageName(stage) +
              " stage (us)",
          stageBucketsUs());
    }
    return m;
  }();
  return metrics;
}

}  // namespace

const char* stageName(Stage stage) noexcept {
  switch (stage) {
    case Stage::kNormalize:
      return "normalize";
    case Stage::kFingerprint:
      return "fingerprint";
    case Stage::kTrackerLockWait:
      return "tracker_lock_wait";
    case Stage::kTrackerLookup:
      return "tracker_lookup";
    case Stage::kPolicyEval:
      return "policy_eval";
    case Stage::kWalAppend:
      return "wal_append";
    case Stage::kQueueWait:
      return "queue_wait";
  }
  return "unknown";
}

void setProvenanceEnabled(bool enabled) noexcept {
  detail::g_provenanceEnabled.store(enabled, std::memory_order_relaxed);
}

void detail::observeStageDirect(Stage stage, std::uint64_t nanos) noexcept {
  const std::size_t i = static_cast<std::size_t>(stage);
  if (i >= kStageCount) return;
  stageMetrics().hist[i]->observeWithExemplar(
      static_cast<double>(nanos) / 1000.0, currentTrace().traceId);
}

ScopedStageCollector::ScopedStageCollector(StageBreakdown* breakdown) noexcept
    : breakdown_(breakdown), saved_(detail::t_stageCollector) {
  detail::t_stageCollector = breakdown;
}

ScopedStageCollector::~ScopedStageCollector() {
  detail::t_stageCollector = saved_;
  if (breakdown_ == nullptr || !provenanceEnabled()) return;
  // Head-sample the histogram contribution along with the trace: an
  // unbiased subsample of decisions, and every attached exemplar points at
  // a trace the flight recorder retained. Collectors running outside any
  // trace (tests, tools) always flush.
  const TraceContext& trace = currentTrace();
  if (trace.valid() && !trace.sampled) return;
  const StageMetrics& metrics = stageMetrics();
  for (std::size_t i = 0; i < kStageCount; ++i) {
    if (breakdown_->nanos[i] == 0) continue;
    metrics.hist[i]->observeWithExemplar(
        static_cast<double>(breakdown_->nanos[i]) / 1000.0, trace.traceId);
  }
}

}  // namespace bf::obs
