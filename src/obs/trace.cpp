#include "obs/trace.h"

#include <chrono>
#include <cstdlib>
#include <sstream>

#include "obs/trace_context.h"

namespace bf::obs {

namespace {

std::uint64_t nowNanos() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::atomic<std::uint32_t> g_nextThreadOrdinal{1};

std::uint32_t thisThreadOrdinal() noexcept {
  thread_local const std::uint32_t ordinal =
      g_nextThreadOrdinal.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

/// Per-thread span stack state (only id + depth are needed).
struct ThreadSpanState {
  std::uint64_t currentSpanId = 0;
  std::uint32_t depth = 0;
};
ThreadSpanState& threadState() noexcept {
  thread_local ThreadSpanState state;
  return state;
}

}  // namespace

TraceLog& TraceLog::instance() {
  static TraceLog* log = [] {
    auto* l = new TraceLog();
    const char* env = std::getenv("BF_TRACE");
    if (env != nullptr && *env != '\0' && std::string(env) != "0") {
      l->setEnabled(true);
    }
    return l;
  }();
  return *log;
}

TraceLog::TraceLog(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.resize(capacity_);
}

void TraceLog::setCapacity(std::size_t capacity) {
  util::MutexLock lock(mutex_);
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_.assign(capacity_, SpanRecord{});
  total_ = 0;
}

void TraceLog::record(const SpanRecord& span) {
  util::MutexLock lock(mutex_);
  SpanRecord& slot = ring_[total_ % capacity_];
  slot = span;
  // Sequence assignment shares the mutex hold with the ring write, so ring
  // order and sequence order agree even under concurrent recorders.
  ++total_;
  slot.seq = total_;
}

std::vector<SpanRecord> TraceLog::events() const {
  util::MutexLock lock(mutex_);
  std::vector<SpanRecord> out;
  const std::uint64_t kept = total_ < capacity_ ? total_ : capacity_;
  out.reserve(kept);
  // Oldest surviving entry first.
  const std::uint64_t begin = total_ - kept;
  for (std::uint64_t i = 0; i < kept; ++i) {
    out.push_back(ring_[(begin + i) % capacity_]);
  }
  return out;
}

std::uint64_t TraceLog::totalRecorded() const {
  util::MutexLock lock(mutex_);
  return total_;
}

std::uint64_t TraceLog::droppedCount() const {
  util::MutexLock lock(mutex_);
  return total_ > capacity_ ? total_ - capacity_ : 0;
}

void TraceLog::clear() {
  util::MutexLock lock(mutex_);
  ring_.assign(capacity_, SpanRecord{});
  total_ = 0;
}

std::string TraceLog::dump() const {
  std::ostringstream os;
  for (const SpanRecord& s : events()) {
    for (std::uint32_t i = 0; i < s.depth; ++i) os << "  ";
    os << s.name << " id=" << s.id << " parent=" << s.parentId
       << " thread=" << s.threadId << " dur_us=" << (s.durationNanos / 1000);
    if (s.traceId != 0) os << " trace=" << s.traceId;
    for (std::uint32_t i = 0; i < s.attrCount && i < SpanRecord::kMaxAttrs;
         ++i) {
      os << " " << s.attrs[i].key << "=" << s.attrs[i].value;
    }
    os << "\n";
  }
  return os.str();
}

ScopedSpan::ScopedSpan(const char* name) noexcept {
  TraceLog& log = TraceLog::instance();
  if (!log.enabled()) return;
  active_ = true;
  ThreadSpanState& state = threadState();
  span_.name = name;
  span_.id = allocateSpanId();
  span_.parentId = state.currentSpanId;
  const TraceContext& ctx = currentTrace();
  span_.traceId = ctx.traceId;
  if (state.currentSpanId == 0 && ctx.spanId != 0) {
    // First span on this thread within an installed trace: parent-link to
    // the ingress span so cross-thread flows reassemble into one tree.
    span_.parentId = ctx.spanId;
  }
  span_.threadId = thisThreadOrdinal();
  span_.depth = state.depth;
  span_.startNanos = nowNanos();
  savedParent_ = state.currentSpanId;
  savedDepth_ = state.depth;
  state.currentSpanId = span_.id;
  ++state.depth;
}

void ScopedSpan::addAttr(const char* key, std::uint64_t value) noexcept {
  if (!active_ || span_.attrCount >= SpanRecord::kMaxAttrs) return;
  span_.attrs[span_.attrCount++] = SpanAttr{key, value};
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  span_.durationNanos = nowNanos() - span_.startNanos;
  ThreadSpanState& state = threadState();
  state.currentSpanId = savedParent_;
  state.depth = savedDepth_;
  TraceLog::instance().record(span_);
}

}  // namespace bf::obs
