// Causal trace identity for decision provenance.
//
// A TraceContext is created at every ingress (plugin hooks, the DLP
// appliance, DecisionEngine::decideAsync) and propagated explicitly through
// the decision path. It carries a 64-bit trace id shared by every span and
// flight-recorder record of one causal flow, the span id of the ingress
// span (so spans on other threads can parent-link across the queue), and a
// head-sampling bit decided once at trace start.
#pragma once

#include <cstdint>

namespace bf::obs {

struct TraceContext {
  std::uint64_t traceId = 0;  ///< 0 = no trace (invalid context)
  std::uint64_t spanId = 0;   ///< span to parent-link children under
  bool sampled = false;       ///< head-sampling verdict, fixed at start()

  [[nodiscard]] bool valid() const noexcept { return traceId != 0; }

  /// Same trace and sampling verdict, fresh span id: the context to install
  /// for work that continues this flow in a new scope or on a new thread.
  [[nodiscard]] TraceContext child() const noexcept;

  /// Fresh root trace. The trace id is a mixed monotonic counter (never 0);
  /// every traceSampleEvery()-th root is head-sampled.
  [[nodiscard]] static TraceContext start() noexcept;
};

/// Head-sampling period for TraceContext::start(): 1 keeps every trace,
/// 0 keeps none, N keeps every Nth. Process-wide; default 16.
void setTraceSampleEvery(std::uint32_t every) noexcept;
[[nodiscard]] std::uint32_t traceSampleEvery() noexcept;

namespace detail {
/// The thread's installed trace context; exposed so currentTrace() — read
/// on stage-timer hot paths — inlines. Treat as private to this header.
extern thread_local TraceContext t_currentTrace;
}  // namespace detail

/// The calling thread's ambient trace context (invalid if none installed).
[[nodiscard]] inline const TraceContext& currentTrace() noexcept {
  return detail::t_currentTrace;
}

/// Allocates a process-unique span id (shared id space with ScopedSpan).
[[nodiscard]] std::uint64_t allocateSpanId() noexcept;

/// Installs `ctx` as the thread's ambient trace for the scope's lifetime,
/// restoring the previous context on destruction.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& ctx) noexcept;
  ~ScopedTraceContext();
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext saved_;
};

/// The context to install at an ingress: continues the ambient trace as a
/// child when one exists (e.g. upload checks triggered inside a retrying
/// transport send), otherwise starts a fresh root.
[[nodiscard]] TraceContext ingressTrace() noexcept;

}  // namespace bf::obs
