// bf::obs — process-wide observability: metrics registry.
//
// The paper's evaluation (S6, Figs. 12/13) is entirely about the latency
// and scalability of the disclosure pipeline, so the pipeline must be able
// to account for itself without ad-hoc per-component counters. This module
// provides the three Prometheus-style metric kinds:
//
//  - Counter:   monotonically increasing, lock-free relaxed atomic adds;
//  - Gauge:     a settable level (store sizes, queue depths);
//  - Histogram: fixed cumulative buckets with atomic per-bucket counts,
//               plus sum/min/max, for latency distributions. Quantiles are
//               estimated by linear interpolation inside the bucket that
//               contains the requested rank.
//
// Metrics live in a MetricsRegistry; `registry()` is the process-wide
// default instance every component reports to. Registration (name lookup)
// takes a mutex, so call sites resolve their metrics once and keep the
// returned reference — increments on the hot path are a single relaxed
// atomic add. References stay valid for the registry's lifetime.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace bf::obs {

namespace detail {
/// Atomic add for doubles without C++20 atomic-float fetch_add (keeps the
/// code portable across libstdc++ versions).
inline void atomicAdd(std::atomic<double>& target, double delta) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}
inline void atomicMin(std::atomic<double>& target, double v) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (v < cur && !target.compare_exchange_weak(cur, v,
                                                  std::memory_order_relaxed)) {
  }
}
inline void atomicMax(std::atomic<double>& target, double v) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur && !target.compare_exchange_weak(cur, v,
                                                  std::memory_order_relaxed)) {
  }
}
}  // namespace detail

class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept { detail::atomicAdd(value_, delta); }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Copyable point-in-time view of a histogram, with the derived statistics
/// benches and tests need. `bucketCounts` holds one count per finite upper
/// bound in `bounds` plus a final overflow (+Inf) bucket.
struct HistogramData {
  std::vector<double> bounds;
  std::vector<std::uint64_t> bucketCounts;
  /// Per bucket (incl. overflow): trace id of the most recent observation
  /// recorded with observeWithExemplar (0 = no exemplar). Links a slow
  /// bucket to a concrete flight-recorder / span trace.
  std::vector<std::uint64_t> exemplars;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< 0 when count == 0
  double max = 0.0;  ///< 0 when count == 0

  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
  /// p-th percentile (p in [0,100]), estimated by linear interpolation
  /// within the containing bucket. Values in the overflow bucket report
  /// the observed maximum. Returns 0 for an empty histogram.
  [[nodiscard]] double percentile(double p) const noexcept;
  /// Estimated fraction of observations strictly below `x` in [0,1].
  [[nodiscard]] double fractionBelow(double x) const noexcept;
};

class Histogram {
 public:
  /// `upperBounds` must be strictly increasing; an implicit +Inf bucket is
  /// appended.
  explicit Histogram(std::vector<double> upperBounds);

  /// Exponential bucket ladder from 0.5us to 2.5s, suitable for the
  /// millisecond-denominated latencies the pipeline records.
  [[nodiscard]] static std::vector<double> defaultLatencyBucketsMs();

  void observe(double v) noexcept { observeImpl(v, 0); }
  /// observe() plus: remembers `traceId` as the exemplar of the bucket the
  /// value lands in (last writer wins; 0 leaves the exemplar untouched).
  void observeWithExemplar(double v, std::uint64_t traceId) noexcept {
    observeImpl(v, traceId);
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  [[nodiscard]] double percentile(double p) const noexcept {
    return data().percentile(p);
  }

  /// Consistent-enough copy for reporting (individual loads are relaxed;
  /// observers racing with writers may see a snapshot mid-update, which is
  /// fine for monitoring).
  [[nodiscard]] HistogramData data() const;

  void reset() noexcept;

 private:
  void observeImpl(double v, std::uint64_t exemplarTraceId) noexcept;

  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;    // bounds_+1 slots
  std::unique_ptr<std::atomic<std::uint64_t>[]> exemplars_;  // bounds_+1 slots
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One metric in a snapshot.
struct MetricValue {
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t counterValue = 0;  ///< kCounter
  double gaugeValue = 0.0;         ///< kGauge
  HistogramData histogram;         ///< kHistogram
};

/// Point-in-time capture of a whole registry, ordered by metric name.
/// `diff` supports the bench/test pattern "what did this phase add?".
class MetricsSnapshot {
 public:
  std::vector<MetricValue> metrics;

  [[nodiscard]] const MetricValue* find(std::string_view name) const noexcept;
  /// Convenience: counter value by name, 0 if absent.
  [[nodiscard]] std::uint64_t counterValue(std::string_view name) const noexcept;
  /// Convenience: gauge level by name, 0.0 if absent.
  [[nodiscard]] double gaugeValue(std::string_view name) const noexcept;

  /// Returns this snapshot minus `earlier`: counter values and histogram
  /// bucket counts/count/sum are subtracted per name (clamped at 0 if the
  /// metric was reset in between); gauges keep their current level.
  /// Metrics absent from `earlier` pass through unchanged.
  [[nodiscard]] MetricsSnapshot diff(const MetricsSnapshot& earlier) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Create-or-get by name. The kind must match any previous registration
  /// of the same name. `help` is kept from the first registration.
  Counter& counter(std::string_view name, std::string_view help = {});
  Gauge& gauge(std::string_view name, std::string_view help = {});
  /// `upperBounds` is used only when the histogram does not exist yet;
  /// empty means defaultLatencyBucketsMs().
  Histogram& histogram(std::string_view name, std::string_view help = {},
                       std::vector<double> upperBounds = {});

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zeroes every metric (tests / bench phase boundaries). Registered
  /// metrics and their addresses survive.
  void resetAll();

 private:
  struct Entry {
    std::string help;
    MetricKind kind = MetricKind::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Entry& entryFor(std::string_view name, std::string_view help,
                  MetricKind kind) BF_REQUIRES(mutex_);

  mutable util::Mutex mutex_{util::kRankMetrics, "MetricsRegistry.mutex_"};
  std::map<std::string, Entry, std::less<>> metrics_ BF_GUARDED_BY(mutex_);
};

/// The process-wide registry every bf component reports to.
[[nodiscard]] MetricsRegistry& registry();

}  // namespace bf::obs
