#include "obs/metrics.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

namespace bf::obs {

// ---- HistogramData ---------------------------------------------------------

double HistogramData::percentile(double p) const noexcept {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Nearest-rank target in [1, count].
  const double targetRank =
      std::max(1.0, p / 100.0 * static_cast<double>(count));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < bucketCounts.size(); ++i) {
    const std::uint64_t inBucket = bucketCounts[i];
    if (inBucket == 0) continue;
    const std::uint64_t nextCumulative = cumulative + inBucket;
    if (static_cast<double>(nextCumulative) >= targetRank) {
      if (i >= bounds.size()) return max;  // overflow bucket
      const double lower = i == 0 ? std::min(min, bounds[0]) : bounds[i - 1];
      const double upper = bounds[i];
      const double fraction =
          (targetRank - static_cast<double>(cumulative)) /
          static_cast<double>(inBucket);
      return lower + (upper - lower) * fraction;
    }
    cumulative = nextCumulative;
  }
  return max;
}

double HistogramData::fractionBelow(double x) const noexcept {
  if (count == 0) return 0.0;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < bucketCounts.size(); ++i) {
    const double lower = i == 0 ? 0.0 : bounds[i - 1];
    if (i >= bounds.size()) {
      // Overflow bucket: interpolate towards the observed maximum.
      if (x <= lower) break;
      if (max <= lower || x >= max) cumulative += bucketCounts[i];
      else {
        cumulative += static_cast<std::uint64_t>(
            static_cast<double>(bucketCounts[i]) * (x - lower) /
            (max - lower));
      }
      break;
    }
    const double upper = bounds[i];
    if (x >= upper) {
      cumulative += bucketCounts[i];
      continue;
    }
    if (x > lower) {
      cumulative += static_cast<std::uint64_t>(
          static_cast<double>(bucketCounts[i]) * (x - lower) / (upper - lower));
    }
    break;
  }
  return static_cast<double>(cumulative) / static_cast<double>(count);
}

// ---- Histogram -------------------------------------------------------------

Histogram::Histogram(std::vector<double> upperBounds)
    : bounds_(std::move(upperBounds)),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  exemplars_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0);
    exemplars_[i].store(0);
  }
}

std::vector<double> Histogram::defaultLatencyBucketsMs() {
  return {0.0005, 0.001, 0.0025, 0.005, 0.01,  0.025, 0.05,
          0.1,    0.25,  0.5,    1.0,   2.5,   5.0,   10.0,
          25.0,   50.0,  100.0,  250.0, 500.0, 1000.0, 2500.0};
}

void Histogram::observeImpl(double v, std::uint64_t exemplarTraceId) noexcept {
  // Prometheus bucket semantics: bucket i counts observations <= bounds[i].
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  if (exemplarTraceId != 0) {
    exemplars_[idx].store(exemplarTraceId, std::memory_order_relaxed);
  }
  count_.fetch_add(1, std::memory_order_relaxed);
  detail::atomicAdd(sum_, v);
  detail::atomicMin(min_, v);
  detail::atomicMax(max_, v);
}

HistogramData Histogram::data() const {
  HistogramData out;
  out.bounds = bounds_;
  out.bucketCounts.resize(bounds_.size() + 1);
  out.exemplars.resize(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    out.bucketCounts[i] = buckets_[i].load(std::memory_order_relaxed);
    out.exemplars[i] = exemplars_[i].load(std::memory_order_relaxed);
  }
  out.count = count_.load(std::memory_order_relaxed);
  out.sum = sum_.load(std::memory_order_relaxed);
  if (out.count > 0) {
    out.min = min_.load(std::memory_order_relaxed);
    out.max = max_.load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
    exemplars_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

// ---- MetricsSnapshot -------------------------------------------------------

const MetricValue* MetricsSnapshot::find(std::string_view name) const noexcept {
  for (const auto& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

std::uint64_t MetricsSnapshot::counterValue(
    std::string_view name) const noexcept {
  const MetricValue* m = find(name);
  return (m != nullptr && m->kind == MetricKind::kCounter) ? m->counterValue
                                                           : 0;
}

double MetricsSnapshot::gaugeValue(std::string_view name) const noexcept {
  const MetricValue* m = find(name);
  return (m != nullptr && m->kind == MetricKind::kGauge) ? m->gaugeValue : 0.0;
}

MetricsSnapshot MetricsSnapshot::diff(const MetricsSnapshot& earlier) const {
  MetricsSnapshot out;
  out.metrics.reserve(metrics.size());
  for (const MetricValue& now : metrics) {
    MetricValue d = now;
    const MetricValue* before = earlier.find(now.name);
    if (before != nullptr && before->kind == now.kind) {
      switch (now.kind) {
        case MetricKind::kCounter:
          d.counterValue = now.counterValue >= before->counterValue
                               ? now.counterValue - before->counterValue
                               : 0;
          break;
        case MetricKind::kGauge:
          break;  // gauges are levels, not rates
        case MetricKind::kHistogram: {
          const HistogramData& a = now.histogram;
          const HistogramData& b = before->histogram;
          if (a.bounds == b.bounds && a.count >= b.count) {
            d.histogram.count = a.count - b.count;
            d.histogram.sum = a.sum - b.sum;
            for (std::size_t i = 0; i < a.bucketCounts.size(); ++i) {
              d.histogram.bucketCounts[i] =
                  a.bucketCounts[i] >= b.bucketCounts[i]
                      ? a.bucketCounts[i] - b.bucketCounts[i]
                      : 0;
            }
          }
          break;
        }
      }
    }
    out.metrics.push_back(std::move(d));
  }
  return out;
}

// ---- MetricsRegistry -------------------------------------------------------

MetricsRegistry::Entry& MetricsRegistry::entryFor(std::string_view name,
                                                  std::string_view help,
                                                  MetricKind kind) {
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry entry;
    entry.help = std::string(help);
    entry.kind = kind;
    it = metrics_.emplace(std::string(name), std::move(entry)).first;
  } else if (it->second.kind != kind) {
    throw std::logic_error("metric '" + std::string(name) +
                           "' registered with a different kind");
  }
  return it->second;
}

Counter& MetricsRegistry::counter(std::string_view name,
                                  std::string_view help) {
  util::MutexLock lock(mutex_);
  Entry& e = entryFor(name, help, MetricKind::kCounter);
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view help) {
  util::MutexLock lock(mutex_);
  Entry& e = entryFor(name, help, MetricKind::kGauge);
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::string_view help,
                                      std::vector<double> upperBounds) {
  util::MutexLock lock(mutex_);
  Entry& e = entryFor(name, help, MetricKind::kHistogram);
  if (!e.histogram) {
    if (upperBounds.empty()) upperBounds = Histogram::defaultLatencyBucketsMs();
    e.histogram = std::make_unique<Histogram>(std::move(upperBounds));
  }
  return *e.histogram;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  util::MutexLock lock(mutex_);
  MetricsSnapshot out;
  out.metrics.reserve(metrics_.size());
  for (const auto& [name, entry] : metrics_) {  // std::map → name-sorted
    MetricValue v;
    v.name = name;
    v.help = entry.help;
    v.kind = entry.kind;
    switch (entry.kind) {
      case MetricKind::kCounter:
        v.counterValue = entry.counter->value();
        break;
      case MetricKind::kGauge:
        v.gaugeValue = entry.gauge->value();
        break;
      case MetricKind::kHistogram:
        v.histogram = entry.histogram->data();
        break;
    }
    out.metrics.push_back(std::move(v));
  }
  return out;
}

void MetricsRegistry::resetAll() {
  util::MutexLock lock(mutex_);
  for (auto& [name, entry] : metrics_) {
    (void)name;
    if (entry.counter) entry.counter->reset();
    if (entry.gauge) entry.gauge->reset();
    if (entry.histogram) entry.histogram->reset();
  }
}

MetricsRegistry& registry() {
  static MetricsRegistry instance;
  return instance;
}

}  // namespace bf::obs
