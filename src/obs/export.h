// bf::obs — snapshot exposition.
//
// Two formats over the same MetricsSnapshot:
//  - Prometheus text exposition (HELP/TYPE headers, cumulative `_bucket`
//    lines with `le` labels, `_sum`/`_count` for histograms) so snapshots
//    can be diffed with standard tooling;
//  - a JSON document (one object per metric, name-sorted) for the bench
//    harness, whose BENCH_*.json result files embed registry snapshots.
#pragma once

#include <string>

#include "obs/metrics.h"

namespace bf::obs {

[[nodiscard]] std::string toPrometheusText(const MetricsSnapshot& snapshot);
[[nodiscard]] std::string toJson(const MetricsSnapshot& snapshot);

}  // namespace bf::obs
