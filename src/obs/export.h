// bf::obs — snapshot exposition.
//
// Two formats over the same MetricsSnapshot:
//  - Prometheus text exposition (HELP/TYPE headers, cumulative `_bucket`
//    lines with `le` labels, `_sum`/`_count` for histograms) so snapshots
//    can be diffed with standard tooling;
//  - a JSON document (one object per metric, name-sorted) for the bench
//    harness, whose BENCH_*.json result files embed registry snapshots.
#pragma once

#include <string>
#include <string_view>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace bf::obs {

/// Prometheus text-exposition escaping for label values: \ -> \\,
/// " -> \", newline -> \n.
[[nodiscard]] std::string escapeLabelValue(std::string_view value);
/// Prometheus HELP-line escaping: \ -> \\, newline -> \n.
[[nodiscard]] std::string escapeHelpText(std::string_view help);

[[nodiscard]] std::string toPrometheusText(const MetricsSnapshot& snapshot);
[[nodiscard]] std::string toJson(const MetricsSnapshot& snapshot);

/// One flight-recorder decision record as a JSON object.
[[nodiscard]] std::string toJson(const DecisionTrace& trace);
/// Every retained record, oldest first:
/// {"schema":"bf-flight-v1","decisions":[...]} — the input format of
/// scripts/bf_explain.py.
[[nodiscard]] std::string toJson(const FlightRecorder& recorder);

}  // namespace bf::obs
