// Keyed integrity tag for encrypted state files (encrypt-then-MAC).
//
// ChaCha20 in counter mode is malleable: flipping ciphertext bit i flips
// plaintext bit i, so an unauthenticated encrypted snapshot could be
// imported with silently altered hashes whenever the parse still succeeds
// (the original satellite bug this module fixes). Snapshot v2 therefore
// appends a 16-byte keyed tag over the whole ciphertext envelope, verified
// BEFORE decryption or parsing.
//
// Construction: the message is absorbed into four 64-bit lanes by chained
// SplitMix64 finalisers seeded from the key (length-extended, position
// bound), then the lane state is whitened through one ChaCha20 block keyed
// with the MAC key. This is NOT a general-purpose MAC (the compression is
// not cryptographic); it is collision-resistant against the threat model
// the snapshot format defends against — storage bit-rot, torn writes and
// ciphertext malleability without the key — matching the strength of the
// repo's existing fnv1a64-based key derivation. A production deployment
// would swap in Poly1305 behind the same 16-byte interface.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "crypto/chacha20.h"

namespace bf::crypto {

using Tag128 = std::array<std::uint8_t, 16>;

/// 16-byte keyed tag over `data`. Deterministic; key-dependent through
/// both the absorb seeds and the ChaCha20 whitening block.
[[nodiscard]] Tag128 keyedTag(const Key256& key, std::string_view data);

/// Constant-time-ish tag comparison (single pass, no early exit).
[[nodiscard]] bool tagEquals(const Tag128& a, const Tag128& b) noexcept;

}  // namespace bf::crypto
