#include "crypto/mac.h"

#include <cstring>

#include "util/hashing.h"

namespace bf::crypto {

Tag128 keyedTag(const Key256& key, std::string_view data) {
  // Absorb phase: four chained mix64 lanes, seeded from the key with a
  // per-lane domain constant ("bfm1" + lane index).
  std::uint64_t lane[4];
  for (int i = 0; i < 4; ++i) {
    std::uint64_t k = 0;
    for (int b = 0; b < 8; ++b) {
      k |= static_cast<std::uint64_t>(key[static_cast<std::size_t>(i * 8 + b)])
           << (8 * b);
    }
    lane[i] = util::mix64(k ^ (0x6266'6d31'0000'0000ULL +
                               static_cast<std::uint64_t>(i)));
  }

  std::size_t pos = 0;
  while (pos + 8 <= data.size()) {
    std::uint64_t chunk;
    std::memcpy(&chunk, data.data() + pos, 8);
    lane[(pos >> 3) & 3] = util::mix64(lane[(pos >> 3) & 3] ^ (chunk + pos));
    pos += 8;
  }
  // Tail: remaining bytes little-endian, high byte marks the tail length so
  // "abc" and "abc\0" absorb differently.
  std::uint64_t tail = static_cast<std::uint64_t>(data.size() - pos) << 56;
  for (std::size_t b = 0; pos + b < data.size(); ++b) {
    tail |= static_cast<std::uint64_t>(
                static_cast<unsigned char>(data[pos + b]))
            << (8 * b);
  }
  lane[(pos >> 3) & 3] = util::mix64(lane[(pos >> 3) & 3] ^ tail);
  // Bind the total length into every lane, then cross-mix the lanes so a
  // chunk affecting only lane k still perturbs the whole state.
  for (int i = 0; i < 4; ++i) {
    lane[i] = util::mix64(lane[i] ^
                          (data.size() * 0x9e3779b97f4a7c15ULL +
                           static_cast<std::uint64_t>(i)));
  }
  for (int i = 0; i < 4; ++i) lane[i] = util::mix64(lane[i] ^ lane[(i + 1) & 3]);

  // Whitening: one ChaCha20 block keyed with the MAC key; the lane state
  // enters through the nonce and block counter, so the tag depends on the
  // key non-linearly even if the absorb phase were inverted.
  Nonce96 nonce{};
  for (int b = 0; b < 8; ++b) {
    nonce[static_cast<std::size_t>(b)] =
        static_cast<std::uint8_t>(lane[0] >> (8 * b));
  }
  for (int b = 0; b < 4; ++b) {
    nonce[static_cast<std::size_t>(8 + b)] =
        static_cast<std::uint8_t>(lane[1] >> (8 * b));
  }
  const std::array<std::uint8_t, 64> block =
      chacha20Block(key, nonce, static_cast<std::uint32_t>(lane[3]));

  Tag128 tag{};
  for (int b = 0; b < 8; ++b) {
    tag[static_cast<std::size_t>(b)] =
        block[static_cast<std::size_t>(b)] ^
        static_cast<std::uint8_t>(lane[2] >> (8 * b));
  }
  for (int b = 0; b < 8; ++b) {
    tag[static_cast<std::size_t>(8 + b)] =
        block[static_cast<std::size_t>(8 + b)] ^
        static_cast<std::uint8_t>(lane[1] >> (8 * b));
  }
  return tag;
}

bool tagEquals(const Tag128& a, const Tag128& b) noexcept {
  unsigned diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    diff |= static_cast<unsigned>(a[i] ^ b[i]);
  }
  return diff == 0;
}

}  // namespace bf::crypto
