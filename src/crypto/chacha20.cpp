#include "crypto/chacha20.h"

#include <cstring>

namespace bf::crypto {

namespace {

constexpr std::uint32_t rotl32(std::uint32_t x, int k) noexcept {
  return (x << k) | (x >> (32 - k));
}

void quarterRound(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                  std::uint32_t& d) noexcept {
  a += b;
  d = rotl32(d ^ a, 16);
  c += d;
  b = rotl32(b ^ c, 12);
  a += b;
  d = rotl32(d ^ a, 8);
  c += d;
  b = rotl32(b ^ c, 7);
}

std::uint32_t load32le(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

void store32le(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

}  // namespace

std::array<std::uint8_t, 64> chacha20Block(const Key256& key,
                                           const Nonce96& nonce,
                                           std::uint32_t counter) {
  std::uint32_t state[16];
  state[0] = 0x61707865;
  state[1] = 0x3320646e;
  state[2] = 0x79622d32;
  state[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state[4 + i] = load32le(key.data() + 4 * i);
  state[12] = counter;
  for (int i = 0; i < 3; ++i) state[13 + i] = load32le(nonce.data() + 4 * i);

  std::uint32_t w[16];
  std::memcpy(w, state, sizeof(w));
  for (int round = 0; round < 10; ++round) {
    quarterRound(w[0], w[4], w[8], w[12]);
    quarterRound(w[1], w[5], w[9], w[13]);
    quarterRound(w[2], w[6], w[10], w[14]);
    quarterRound(w[3], w[7], w[11], w[15]);
    quarterRound(w[0], w[5], w[10], w[15]);
    quarterRound(w[1], w[6], w[11], w[12]);
    quarterRound(w[2], w[7], w[8], w[13]);
    quarterRound(w[3], w[4], w[9], w[14]);
  }
  std::array<std::uint8_t, 64> out;
  for (int i = 0; i < 16; ++i) store32le(out.data() + 4 * i, w[i] + state[i]);
  return out;
}

std::string chacha20Xor(std::string_view data, const Key256& key,
                        const Nonce96& nonce, std::uint32_t counter) {
  std::string out(data);
  std::size_t pos = 0;
  while (pos < out.size()) {
    const auto block = chacha20Block(key, nonce, counter++);
    const std::size_t n = std::min<std::size_t>(64, out.size() - pos);
    for (std::size_t i = 0; i < n; ++i) {
      out[pos + i] = static_cast<char>(
          static_cast<std::uint8_t>(out[pos + i]) ^ block[i]);
    }
    pos += n;
  }
  return out;
}

}  // namespace bf::crypto
