// Sealer: the encrypt-before-upload enforcement primitive.
//
// When the policy enforcement module decides a text segment must not reach
// a service in plain text, it can "encrypt the data before transmission"
// (paper S3). The Sealer wraps ChaCha20 with per-organisation keys and a
// deterministic nonce schedule, producing a printable envelope
// "BFENC1:<nonce-hex>:<ciphertext-hex>" that survives transport through
// text-only channels (form fields, JSON bodies).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "crypto/chacha20.h"
#include "sec/sensitive.h"

namespace bf::crypto {

class Sealer {
 public:
  /// Derives a 256-bit key from an organisation secret (hash expansion —
  /// the simulated deployment has no KMS).
  explicit Sealer(std::string_view orgSecret);

  /// Encrypts `plaintext` into a printable envelope. Each call uses a fresh
  /// nonce from an internal counter. Sealing is a declassification gate
  /// (DESIGN.md §14): the envelope is ciphertext, so the return type drops
  /// the sensitivity wrapper.
  [[nodiscard]] std::string seal(sec::SensitiveView plaintext);

  /// Decrypts an envelope produced by seal(). Returns nullopt if the input
  /// is not a well-formed envelope.
  [[nodiscard]] std::optional<std::string> unseal(
      std::string_view envelope) const;

  /// True if `s` looks like a sealed envelope.
  [[nodiscard]] static bool isSealed(std::string_view s) noexcept;

 private:
  Key256 key_{};
  std::uint64_t nonceCounter_ = 0;
};

}  // namespace bf::crypto
