// ChaCha20 stream cipher (RFC 8439 block function and counter mode).
//
// BrowserFlow's enforcement module "can also encrypt confidential data
// before upload" (paper S5); this provides that primitive for the simulated
// middleware. Implemented from the RFC; verified against the RFC 8439 test
// vectors in tests/crypto.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace bf::crypto {

using Key256 = std::array<std::uint8_t, 32>;
using Nonce96 = std::array<std::uint8_t, 12>;

/// Encrypts or decrypts `data` (the cipher is its own inverse) with the
/// given key, nonce and initial block counter.
[[nodiscard]] std::string chacha20Xor(std::string_view data, const Key256& key,
                                      const Nonce96& nonce,
                                      std::uint32_t counter = 1);

/// One 64-byte keystream block; exposed for the RFC test vectors.
[[nodiscard]] std::array<std::uint8_t, 64> chacha20Block(const Key256& key,
                                                         const Nonce96& nonce,
                                                         std::uint32_t counter);

}  // namespace bf::crypto
