#include "crypto/sealer.h"

#include <cstdio>

#include "util/hashing.h"
#include "util/strings.h"

namespace bf::crypto {

namespace {

constexpr std::string_view kMagic = "BFENC1:";

std::string toHex(std::string_view bytes) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    out.push_back(kDigits[c >> 4]);
    out.push_back(kDigits[c & 0xf]);
  }
  return out;
}

std::optional<std::string> fromHex(std::string_view hex) {
  if (hex.size() % 2 != 0) return std::nullopt;
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  std::string out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return out;
}

}  // namespace

Sealer::Sealer(std::string_view orgSecret) {
  // Expand the secret into 32 key bytes by chained FNV hashing. Not a real
  // KDF, but the simulated deployment's security lives in the model, not in
  // the key schedule.
  std::uint64_t h = util::fnv1a64(orgSecret);
  for (int i = 0; i < 4; ++i) {
    h = util::mix64(h + static_cast<std::uint64_t>(i));
    for (int b = 0; b < 8; ++b) {
      key_[static_cast<std::size_t>(i * 8 + b)] =
          static_cast<std::uint8_t>(h >> (8 * b));
    }
  }
}

std::string Sealer::seal(sec::SensitiveView plaintext) {
  Nonce96 nonce{};
  const std::uint64_t n = ++nonceCounter_;
  for (int i = 0; i < 8; ++i) {
    nonce[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(n >> (8 * i));
  }
  const std::string ct = chacha20Xor(plaintext.raw(), key_, nonce);
  std::string nonceBytes(reinterpret_cast<const char*>(nonce.data()),
                         nonce.size());
  return std::string(kMagic) + toHex(nonceBytes) + ":" + toHex(ct);
}

std::optional<std::string> Sealer::unseal(std::string_view envelope) const {
  if (!isSealed(envelope)) return std::nullopt;
  std::string_view rest = envelope.substr(kMagic.size());
  const std::size_t sep = rest.find(':');
  if (sep == std::string_view::npos) return std::nullopt;
  const auto nonceBytes = fromHex(rest.substr(0, sep));
  const auto ct = fromHex(rest.substr(sep + 1));
  if (!nonceBytes || !ct || nonceBytes->size() != 12) return std::nullopt;
  Nonce96 nonce{};
  for (std::size_t i = 0; i < 12; ++i) {
    nonce[i] = static_cast<std::uint8_t>((*nonceBytes)[i]);
  }
  return chacha20Xor(*ct, key_, nonce);
}

bool Sealer::isSealed(std::string_view s) noexcept {
  return util::startsWith(s, kMagic);
}

}  // namespace bf::crypto
