// Write-ahead log + checkpointing for the flow tracker (DESIGN.md §11, §13).
//
// The snapshot layer (flow/snapshot.h) persists state only when someone
// calls saveSnapshot(); everything observed since the last save dies with
// the process. This module closes that window with the classic
// checkpoint-plus-log design:
//
//  - every tracker mutation appends one CRC32C-framed record to an
//    append-only WAL file (the append runs inside the tracker's exclusive
//    lock section, so the log order IS the mutation order);
//  - recovery loads the newest valid checkpoint (snapshot v2), then
//    replays the WAL tail in sequence order, discarding the first torn or
//    corrupt frame and everything after it — the recovered state is always
//    a prefix of the pre-crash history, never a mix;
//  - a monotonic sequence number links the two: a checkpoint written at
//    sequence S makes every record with sequence <= S redundant, so the
//    log can be rotated.
//
// WAL file layout (little-endian):
//   header : 8-byte magic "BFWAL001" + u64 baseSequence
//   frame  : u32 payloadLen | u32 maskedCrc32c(payload) | payload
//   payload: u64 sequence | u8 recordType | type-specific body
//
// The CRC is masked (util/crc32c.h) so a frame whose payload happens to
// contain a valid frame image still fails verification when the framing
// shifts. A frame is discarded — together with everything after it — when
// it is torn (fewer bytes than the header promises), its CRC mismatches,
// its type is unknown, its body does not parse exactly, or its sequence
// breaks continuity.
//
// Durability levels: frames buffer in user space and reach the kernel once
// 64 KiB accumulates, on sync()/rotate()/close(), or on every append with
// syncEachAppend (bench_recovery measures the fsync cost); fsync runs at
// those same boundaries. The guarantee was always fsync-granularity —
// buffering narrows only the window against a SIGKILL between checkpoints,
// and keeps the append cost off the per-keystroke decision path.
//
// Failure model (DESIGN.md §13): a failed append, flush or fsync NEVER
// fails the tracker mutation — availability over durability. The log
// latches unhealthy, the file is POISONED (closed and abandoned; a
// partially-written tail is exactly what recovery's CRC/continuity checks
// are built to discard) and every record that could not be made durable is
// counted in lostRecords(). Sequences stay MONOTONIC: a dropped record
// still consumes its sequence number, so the in-memory tracker and the
// sequence space never diverge — the repair checkpoint (DurabilityManager)
// snapshots the full in-memory state at the last assigned sequence, which
// re-covers the lost records and re-establishes a durable prefix. All file
// I/O flows through the bf::io Vfs seam so storage faults are injectable.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "flow/segment_db.h"
#include "flow/tracker.h"
#include "io/vfs.h"
#include "util/mutex.h"
#include "util/result.h"
#include "util/retry.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/thread_annotations.h"

namespace bf::flow {

enum class WalRecordType : std::uint8_t {
  kSegmentObserved = 1,      ///< full post-mutation segment record + grams
  kAssociationAdded = 2,     ///< one restored hash association
  kSegmentRemoved = 3,       ///< segment id
  kThresholdChanged = 4,     ///< segment name + new threshold
  kAssociationsEvicted = 5,  ///< eviction cutoff timestamp
};

/// Append-only log of tracker mutations. Thread-safe (own mutex, rank
/// util::kRankWal — nests inside the tracker's lock, whose exclusive
/// sections are where every append originates).
class WriteAheadLog {
 public:
  WriteAheadLog() = default;
  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// One-lock view of the log for the decision-path maintenance check.
  struct Stats {
    bool healthy = false;
    std::uint64_t nextSequence = 0;  ///< sequence the NEXT record will get
    std::uint64_t appended = 0;      ///< records accepted since open/rotate
    std::uint64_t lost = 0;          ///< records dropped since process start
  };

  /// Creates (or truncates) the log file at `path` and writes the header.
  /// Records appended afterwards get sequences baseSequence+1, +2, ...
  /// `vfs` routes the file I/O (null = io::defaultVfs()); it must outlive
  /// the log.
  [[nodiscard]] util::Status open(const std::string& path,
                                  std::uint64_t baseSequence,
                                  bool syncEachAppend,
                                  io::Vfs* vfs = nullptr) BF_EXCLUDES(mutex_);

  /// fsync + close; further appends are dropped (and counted as failures).
  void close() BF_EXCLUDES(mutex_);

  /// Closes the current file and opens a fresh one (checkpoint rotation).
  [[nodiscard]] util::Status rotate(const std::string& path,
                                    std::uint64_t baseSequence)
      BF_EXCLUDES(mutex_);

  // ---- Emission (called from the tracker's exclusive sections) ------------

  void logSegmentObserved(const SegmentRecord& rec) BF_EXCLUDES(mutex_);
  void logAssociationAdded(SegmentKind kind, std::uint64_t hash,
                           SegmentId segment, util::Timestamp firstSeen)
      BF_EXCLUDES(mutex_);
  void logSegmentRemoved(SegmentId id) BF_EXCLUDES(mutex_);
  void logThresholdChanged(std::string_view name, double threshold)
      BF_EXCLUDES(mutex_);
  void logAssociationsEvicted(util::Timestamp cutoff) BF_EXCLUDES(mutex_);

  /// fsync the log file (checkpoint boundary / explicit durability point).
  [[nodiscard]] util::Status sync() BF_EXCLUDES(mutex_);

  // ---- Introspection ------------------------------------------------------

  /// False after any append/open failure since the last successful
  /// open/rotate. An unhealthy log keeps accepting (and dropping) appends;
  /// dropped appends still consume sequence numbers (see lostRecords()).
  [[nodiscard]] bool healthy() const BF_EXCLUDES(mutex_);
  /// Sequence the NEXT appended record will get. Monotonic across
  /// failures: dropped records consume sequences too.
  [[nodiscard]] std::uint64_t nextSequence() const BF_EXCLUDES(mutex_);
  /// Records appended (successfully) since open/rotate.
  [[nodiscard]] std::uint64_t appendedRecords() const BF_EXCLUDES(mutex_);
  /// Records dropped since process start (upper bound: when a buffered
  /// flush fails, a prefix of the buffer may in fact have reached disk).
  /// Never reset — this is the process's cumulative durability debt; the
  /// repair checkpoint re-covers the records but keeps the count.
  [[nodiscard]] std::uint64_t lostRecords() const BF_EXCLUDES(mutex_);
  /// healthy/nextSequence/appendedRecords/lostRecords in one lock
  /// acquisition — the decision-path maintenance fast path.
  [[nodiscard]] Stats stats() const BF_EXCLUDES(mutex_);
  [[nodiscard]] bool syncEachAppend() const BF_EXCLUDES(mutex_);

  /// Test hook: force the next `n` appends to fail without touching the
  /// file (exercises the unhealthy path deterministically).
  void failNextAppends(int n) BF_EXCLUDES(mutex_);

 private:
  void append(WalRecordType type, const std::string& body)
      BF_EXCLUDES(mutex_);
  /// write()s the user-space frame buffer. On failure the buffered frames
  /// are counted lost, the file is poisoned (closed and abandoned — its
  /// tail may be torn) and the log latches unhealthy. Sequences are NOT
  /// rolled back. Returns false on failure.
  bool flushLocked() BF_REQUIRES(mutex_);
  void closeLocked() BF_REQUIRES(mutex_);
  /// Drops the current file after a write/fsync failure: the next
  /// checkpoint rotation supersedes it, and replay handles its torn tail.
  void poisonLocked() BF_REQUIRES(mutex_);

  mutable util::Mutex mutex_{util::kRankWal, "WriteAheadLog.mutex_"};
  io::Vfs* vfs_ BF_GUARDED_BY(mutex_) = nullptr;
  std::unique_ptr<io::File> file_ BF_GUARDED_BY(mutex_);
  std::string path_ BF_GUARDED_BY(mutex_);
  std::uint64_t nextSeq_ BF_GUARDED_BY(mutex_) = 1;
  std::uint64_t appended_ BF_GUARDED_BY(mutex_) = 0;
  std::uint64_t lost_ BF_GUARDED_BY(mutex_) = 0;
  bool syncEachAppend_ BF_GUARDED_BY(mutex_) = false;
  bool healthy_ BF_GUARDED_BY(mutex_) = false;
  int failNext_ BF_GUARDED_BY(mutex_) = 0;
  std::string buffer_ BF_GUARDED_BY(mutex_);  ///< frames not yet write()n
  std::uint64_t bufferedRecords_ BF_GUARDED_BY(mutex_) = 0;
};

/// Outcome of replaying one WAL file into a tracker.
struct WalReplayResult {
  std::uint64_t applied = 0;         ///< records applied to the tracker
  std::uint64_t skipped = 0;         ///< valid records with seq <= floor
  std::uint64_t discardedBytes = 0;  ///< bytes after the first bad frame
  std::uint64_t lastSequence = 0;    ///< highest sequence applied or skipped
  util::Timestamp maxTimestamp = 0;  ///< largest timestamp in applied records
  bool sawCorruption = false;        ///< hit a torn/corrupt frame or seq gap
};

/// Replays the WAL file at `path` into `tracker`: applies every valid
/// record with floor < sequence <= cap, in order, requiring exact sequence
/// continuity from `nextExpected` (records below it are skipped as already
/// covered by the checkpoint). Stops at the first torn/corrupt frame or
/// sequence gap; everything after it is counted in discardedBytes. The
/// tracker's WAL should be detached while replaying (recovery must not
/// re-log its own replay). `vfs` routes the read (null = defaultVfs()).
[[nodiscard]] WalReplayResult replayWalFile(
    FlowTracker& tracker, const std::string& path, std::uint64_t nextExpected,
    std::uint64_t cap = ~std::uint64_t{0}, io::Vfs* vfs = nullptr);

/// Durability health (DESIGN.md §13). Values double as the bf_wal_health
/// gauge encoding, so keep them stable.
enum class DurabilityHealth : std::uint8_t {
  kHealthy = 0,    ///< appends durable, checkpoints succeeding
  kDegraded = 1,   ///< storage failing; mutations continue, durability lost
  kRecovering = 2, ///< a repair attempt is in flight
};

/// Configuration of the durability manager.
struct DurabilityConfig {
  /// Directory holding checkpoint-<seq>.bfc and wal-<seq>.bfw files
  /// (created if missing).
  std::string directory;
  /// Snapshot encryption secret (empty = plaintext checkpoints).
  std::string secret;
  /// checkpointIfDue() rolls a new checkpoint once this many records have
  /// been appended since the last one.
  std::uint64_t checkpointEveryRecords = 4096;
  /// fsync the WAL on every append (maximum durability; bench_recovery
  /// quantifies the cost) instead of only at checkpoint boundaries.
  bool syncEachAppend = false;
  /// Checkpoint/WAL generations kept after a successful checkpoint. 2 makes
  /// a corrupt newest checkpoint self-healing (the previous checkpoint plus
  /// both logs replay to the same state). 0 keeps everything (the fuzz
  /// harness's oracle mode).
  std::size_t keepGenerations = 2;
  /// Routes all checkpoint/WAL/directory I/O (null = io::defaultVfs());
  /// must outlive the manager. FaultVfs goes here in the chaos suites.
  io::Vfs* vfs = nullptr;
  /// Decorrelated-jitter backoff between repair attempts while degraded
  /// (util/retry.h discipline; measured on a monotonic stopwatch, never
  /// slept). Repair retries indefinitely — self-healing is the contract —
  /// but never faster than this.
  double repairBaseDelayMs = 50.0;
  double repairMaxDelayMs = 2000.0;
  /// Seed for the repair backoff jitter.
  std::uint64_t repairSeed = 0x62665F7265706169ull;  // "bf_repai"
  /// Byte quota across WAL segments + checkpoint generations; when the
  /// directory exceeds it at a checkpoint/repair boundary, pruning gets
  /// aggressive (only the newest generation survives). 0 = unlimited.
  std::uint64_t maxStorageBytes = 0;
};

/// What recovery found and did.
struct RecoveryStats {
  std::uint64_t checkpointSequence = 0;  ///< sequence of the loaded checkpoint
  std::uint64_t replayedRecords = 0;     ///< WAL records applied
  std::uint64_t discardedBytes = 0;      ///< bytes dropped at the torn tail
  std::uint64_t lastSequence = 0;        ///< sequence of the recovered state
  util::Timestamp maxTimestamp = 0;      ///< advance the clock past this
  bool usedFallbackCheckpoint = false;   ///< newest checkpoint was corrupt
  double replayMillis = 0.0;             ///< load + replay wall time
};

/// Owns the WAL + checkpoint lifecycle for one tracker.
///
/// Thread safety: recoverAndAttach(), checkpoint*() and maintain() require
/// QUIESCED tracker mutations — the same external-serialisation contract
/// as flow::exportState() (the engine's lockState() provides it on the
/// decision path). The WAL itself is internally synchronised, so tracker
/// mutations from any thread log safely between those calls.
///
/// Self-healing (DESIGN.md §13): health() runs the state machine
/// Healthy → Degraded → Recovering → Healthy. A WAL append/flush/fsync
/// failure or a failed checkpoint degrades the manager; maintain() then
/// schedules repair attempts on decorrelated-jitter backoff. A repair IS
/// an emergency checkpoint: the full in-memory state — including every
/// record the WAL dropped — is snapshotted at the last assigned sequence
/// and the log rotates to a fresh segment, re-establishing a durable
/// prefix. Repair retries indefinitely; an unrecoverable store degrades
/// durability forever but never blocks a tracker mutation.
class DurabilityManager {
 public:
  explicit DurabilityManager(DurabilityConfig config);
  ~DurabilityManager();

  DurabilityManager(const DurabilityManager&) = delete;
  DurabilityManager& operator=(const DurabilityManager&) = delete;

  /// Recovers `tracker` (which must be empty) from the directory: newest
  /// valid checkpoint, then the WAL tail. Afterwards writes a fresh
  /// checkpoint, rotates the log, prunes old generations, and attaches the
  /// WAL to the tracker so new mutations are logged. The caller must
  /// advance the tracker's clock past RecoveryStats::maxTimestamp.
  [[nodiscard]] util::Result<RecoveryStats> recoverAndAttach(
      FlowTracker& tracker);

  /// Writes a checkpoint of the tracker's current state, rotates the WAL
  /// and prunes old generations. Mutations must be quiesced. Success
  /// re-establishes a durable prefix and restores kHealthy.
  [[nodiscard]] util::Status checkpoint(const FlowTracker& tracker);

  /// True once checkpointEveryRecords appends have accumulated.
  [[nodiscard]] bool checkpointDue() const;

  /// checkpoint() when due, no-op otherwise.
  [[nodiscard]] util::Status checkpointIfDue(const FlowTracker& tracker);

  /// The decision-path maintenance hook: periodic checkpoints while
  /// healthy, backoff-paced repair attempts while degraded. Cheap when
  /// nothing is due (one WAL lock acquisition). Mutations must be
  /// quiesced, same as checkpoint(). Returns the repair/checkpoint
  /// outcome (ok when nothing was attempted).
  [[nodiscard]] util::Status maintain(const FlowTracker& tracker);

  /// Current durability health (the bf_wal_health gauge value).
  [[nodiscard]] DurabilityHealth health() const noexcept { return health_; }

  /// Healthy = attached, WAL accepting appends, last checkpoint succeeded
  /// and no repair pending. An unhealthy manager never blocks tracker
  /// mutations.
  [[nodiscard]] bool healthy() const;

  /// Repair attempts made in the current degraded episode (0 when healthy).
  [[nodiscard]] std::uint64_t repairAttempts() const noexcept {
    return repairAttempts_;
  }

  [[nodiscard]] WriteAheadLog& wal() noexcept { return wal_; }
  [[nodiscard]] const RecoveryStats& lastRecovery() const noexcept {
    return lastRecovery_;
  }
  [[nodiscard]] const DurabilityConfig& config() const noexcept {
    return config_;
  }

 private:
  [[nodiscard]] io::Vfs& vfs() const noexcept;
  [[nodiscard]] std::string checkpointPath(std::uint64_t seq) const;
  [[nodiscard]] std::string walPath(std::uint64_t seq) const;
  void pruneGenerations(std::uint64_t keepFromSeq);
  /// Total bytes across checkpoint + WAL files; updates bf_storage_bytes.
  [[nodiscard]] std::uint64_t measureStorageBytes();
  /// Shrinks to the newest generation when over maxStorageBytes.
  void enforceStorageQuota(std::uint64_t currentSeq);
  void enterDegraded();
  /// One repair attempt: emergency checkpoint + rotation.
  [[nodiscard]] util::Status attemptRepair(const FlowTracker& tracker);

  DurabilityConfig config_;
  WriteAheadLog wal_;
  std::uint64_t recordsAtLastCheckpoint_ = 0;
  bool attached_ = false;
  bool lastCheckpointOk_ = true;
  RecoveryStats lastRecovery_;

  // Repair state machine (driven from maintain(); same quiesced-caller
  // contract as checkpoint(), so plain members suffice).
  DurabilityHealth health_ = DurabilityHealth::kHealthy;
  util::Rng repairRng_{0};
  util::Backoff repairBackoff_{{}, nullptr};
  util::Stopwatch repairWatch_;
  double nextRepairDelayMs_ = 0.0;
  std::uint64_t repairAttempts_ = 0;
};

}  // namespace bf::flow
