#include "flow/tracker.h"

#include <algorithm>
#include <thread>
#include <unordered_set>

#include "flow/wal.h"
#include "obs/stage.h"
#include "obs/trace.h"
#include "text/segmenter.h"
#include "util/hashing.h"

namespace bf::flow {

namespace {

/// Process-wide tracker metrics, resolved once. Per-tracker counters are
/// mirrored here; the gauges report the sizes of the most recently updated
/// tracker's stores (single-tracker processes, the common deployment, see
/// exact values; multi-tracker benches read per-instance stats()).
struct TrackerMetrics {
  obs::Counter* queries;
  obs::Counter* cacheHits;
  obs::Counter* cacheMisses;
  obs::Counter* candidates;
  obs::Counter* fingerprints;
  obs::Gauge* dbhashParagraphHashes;
  obs::Gauge* dbhashDocumentHashes;
  obs::Gauge* dbparSegments;
};

const TrackerMetrics& trackerMetrics() {
  static const TrackerMetrics m = [] {
    obs::MetricsRegistry& r = obs::registry();
    TrackerMetrics out;
    out.queries = &r.counter("bf_tracker_queries_total",
                             "Disclosure queries answered (Algorithm 1)");
    out.cacheHits = &r.counter(
        "bf_tracker_cache_hits_total",
        "Per-segment queries served from the unchanged-fingerprint cache");
    out.cacheMisses =
        &r.counter("bf_tracker_cache_misses_total",
                   "Per-segment queries that recomputed disclosure");
    out.candidates = &r.counter("bf_tracker_candidates_inspected_total",
                                "Candidate sources scored during queries");
    out.fingerprints = &r.counter("bf_tracker_fingerprints_computed_total",
                                  "Text fingerprints computed");
    out.dbhashParagraphHashes =
        &r.gauge("bf_tracker_dbhash_paragraph_hashes",
                 "Distinct paragraph hashes in DBhash");
    out.dbhashDocumentHashes =
        &r.gauge("bf_tracker_dbhash_document_hashes",
                 "Distinct document hashes in DBhash");
    out.dbparSegments =
        &r.gauge("bf_tracker_dbpar_segments", "Live segments in DBpar");
    return out;
  }();
  return m;
}

/// observeDocument fans paragraph fingerprinting out across threads once a
/// document is large enough to amortise thread start-up.
constexpr std::size_t kMinParagraphsPerWorker = 4;
constexpr std::size_t kMaxFingerprintWorkers = 8;

}  // namespace

FlowTracker::FlowTracker(TrackerConfig config, util::Clock* clock)
    : config_(config), tape_(clock) {}

void FlowTracker::refreshStoreGauges() const noexcept {
  const Stores& s = stores_[static_cast<std::size_t>(lr_.activeInstance())];
  const TrackerMetrics& m = trackerMetrics();
  m.dbhashParagraphHashes->set(static_cast<double>(
      s.hashes[idx(SegmentKind::kParagraph)].distinctHashCount()));
  m.dbhashDocumentHashes->set(static_cast<double>(
      s.hashes[idx(SegmentKind::kDocument)].distinctHashCount()));
  m.dbparSegments->set(static_cast<double>(s.segments.size()));
}

std::uint64_t FlowTracker::digestOf(const text::Fingerprint& fp) {
  // Order-independent-enough digest: hashes() is sorted, so a sequential
  // combine is deterministic for a given hash set.
  std::uint64_t d = 0x9e3779b97f4a7c15ULL;
  for (std::uint64_t h : fp.hashes()) d = util::hashCombine(d, h);
  return d ^ fp.size();
}

SegmentId FlowTracker::observeSegment(SegmentKind kind, std::string_view name,
                                      std::string_view document,
                                      std::string_view service,
                                      sec::SensitiveView text,
                                      std::optional<double> threshold) {
  BF_SPAN("flow.observe");
  // Fingerprinting is pure CPU over immutable config: do it before taking
  // the writer mutex so concurrent observers only serialise on the store
  // update.
  text::Fingerprint fp;
  {
    obs::StageTimer fpTimer(obs::Stage::kFingerprint);
    fp = text::fingerprintText(text.raw(), config_.fingerprint);
  }
  stats_.fingerprintsComputed.fetch_add(1, std::memory_order_relaxed);
  trackerMetrics().fingerprints->inc();
  const std::uint64_t lockWait = obs::stageStart();
  util::MutexLock lock(mutex_);
  obs::stageEnd(obs::Stage::kTrackerLockWait, lockWait);
  const SegmentId id = mutateStores([&](Stores& s, WriteAheadLog* wal) {
    return observeSegmentIn(s, wal, kind, name, document, service, fp,
                            threshold);
  });
  refreshStoreGauges();
  return id;
}

SegmentId FlowTracker::observeSegmentIn(Stores& s, WriteAheadLog* wal,
                                        SegmentKind kind,
                                        std::string_view name,
                                        std::string_view document,
                                        std::string_view service,
                                        const text::Fingerprint& fp,
                                        std::optional<double> threshold) {
  const double defaultThreshold = kind == SegmentKind::kParagraph
                                      ? config_.defaultParagraphThreshold
                                      : config_.defaultDocumentThreshold;
  const SegmentRecord* existing = s.segments.findByName(name);
  SegmentId id;
  if (existing == nullptr) {
    id = s.segments.create(kind, std::string(name), std::string(document),
                           std::string(service),
                           threshold.value_or(defaultThreshold), tape_.now());
  } else {
    id = existing->id;
    if (threshold) s.segments.setThreshold(id, *threshold);
    // Unchanged fingerprint: nothing to record and the cached disclosure
    // answer stays valid (the per-keystroke fast path of S6.2). A threshold
    // change is still durable state, so it is the one thing logged.
    if (existing->fingerprint.sameHashes(fp)) {
      if (wal != nullptr && threshold) {
        wal->logThresholdChanged(name, *threshold);
      }
      return id;
    }
  }

  const util::Timestamp now = tape_.now();
  HashDb& db = s.hashes[idx(kind)];
  for (std::uint64_t h : fp.hashes()) {
    db.recordObservation(h, id, now);
  }
  s.segments.updateFingerprint(id, fp, now);
  if (auto it = s.cache.find(id); it != s.cache.end()) {
    it->second.valid = false;
  }
  if (wal != nullptr) {
    // Log the POST-mutation record: replaying it recreates the segment with
    // its effective threshold and timestamps, and re-records its hash
    // associations at updatedAt (HashDb idempotency keeps earlier
    // first-seen timestamps, exactly as the live path did).
    if (const SegmentRecord* rec = s.segments.find(id); rec != nullptr) {
      wal->logSegmentObserved(*rec);
    }
  }
  return id;
}

FlowTracker::DocumentObservation FlowTracker::observeDocument(
    std::string_view docName, std::string_view service,
    sec::SensitiveView fullText, std::optional<double> paragraphThreshold,
    std::optional<double> documentThreshold) {
  BF_SPAN("flow.observe_document");
  const std::uint64_t fpStart = obs::stageStart();
  const auto paras = text::segmentParagraphs(fullText.raw());

  // Fingerprint the document and every paragraph OUTSIDE the lock — pure
  // CPU over immutable config. Large documents fan the paragraphs out over
  // a few threads, each hashing through its own thread-local workspace.
  text::Fingerprint docFp =
      text::fingerprintText(fullText.raw(), config_.fingerprint);
  std::vector<text::Fingerprint> paraFps(paras.size());
  const std::size_t workers =
      std::min({paras.size() / kMinParagraphsPerWorker,
                static_cast<std::size_t>(std::thread::hardware_concurrency()),
                kMaxFingerprintWorkers});
  if (workers > 1) {
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t t = 0; t < workers; ++t) {
      pool.emplace_back([&] {
        for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
             i < paras.size();
             i = next.fetch_add(1, std::memory_order_relaxed)) {
          paraFps[i] =
              text::fingerprintText(paras[i].text, config_.fingerprint);
        }
      });
    }
    for (std::thread& th : pool) th.join();
  } else {
    for (std::size_t i = 0; i < paras.size(); ++i) {
      paraFps[i] = text::fingerprintText(paras[i].text, config_.fingerprint);
    }
  }
  stats_.fingerprintsComputed.fetch_add(paras.size() + 1,
                                        std::memory_order_relaxed);
  trackerMetrics().fingerprints->inc(paras.size() + 1);
  obs::stageEnd(obs::Stage::kFingerprint, fpStart);

  // One writer section applies every store update (to both replicas), then
  // refreshes the gauges once — the lock is taken once, not once per
  // paragraph.
  const std::uint64_t lockWait = obs::stageStart();
  util::MutexLock lock(mutex_);
  obs::stageEnd(obs::Stage::kTrackerLockWait, lockWait);
  DocumentObservation out = mutateStores([&](Stores& s, WriteAheadLog* wal) {
    DocumentObservation o;
    o.paragraphs.reserve(paras.size());
    o.document = observeSegmentIn(s, wal, SegmentKind::kDocument, docName,
                                  docName, service, docFp, documentThreshold);
    for (std::size_t i = 0; i < paras.size(); ++i) {
      std::string pname =
          std::string(docName) + "#p" + std::to_string(paras[i].index);
      o.paragraphs.push_back(observeSegmentIn(s, wal, SegmentKind::kParagraph,
                                              pname, docName, service,
                                              paraFps[i], paragraphThreshold));
    }
    return o;
  });
  refreshStoreGauges();
  return out;
}

void FlowTracker::removeSegmentByName(std::string_view name) {
  util::MutexLock lock(mutex_);
  mutateStores([&](Stores& s, WriteAheadLog* wal) {
    const SegmentRecord* rec = s.segments.findByName(name);
    if (rec != nullptr) removeSegmentIn(s, wal, rec->id);
  });
  refreshStoreGauges();
}

void FlowTracker::removeSegment(SegmentId id) {
  util::MutexLock lock(mutex_);
  mutateStores([&](Stores& s, WriteAheadLog* wal) {
    removeSegmentIn(s, wal, id);
  });
  refreshStoreGauges();
}

void FlowTracker::removeSegmentIn(Stores& s, WriteAheadLog* wal,
                                  SegmentId id) {
  const SegmentRecord* rec = s.segments.find(id);
  if (rec != nullptr) {
    s.hashes[idx(rec->kind)].removeSegment(id);
  } else {
    s.hashes[idx(SegmentKind::kParagraph)].removeSegment(id);
    s.hashes[idx(SegmentKind::kDocument)].removeSegment(id);
  }
  s.segments.remove(id);
  s.cache.erase(id);
  if (wal != nullptr) wal->logSegmentRemoved(id);
}

std::vector<DisclosureHit> FlowTracker::disclosedSources(
    const text::Fingerprint& target, SegmentKind sourceKind, SegmentId self,
    std::string_view selfDocument) const {
  util::LeftRightReadGuard guard(lr_);
  return disclosedSourcesIn(readerStores(guard), target, sourceKind, self,
                            selfDocument);
}

std::vector<DisclosureHit> FlowTracker::disclosedSourcesIn(
    const Stores& st, const text::Fingerprint& target, SegmentKind sourceKind,
    SegmentId self, std::string_view selfDocument) const {
  BF_SPAN("flow.query");
  obs::StageTimer lookupTimer(obs::Stage::kTrackerLookup);
  stats_.queries.fetch_add(1, std::memory_order_relaxed);
  trackerMetrics().queries->inc();
  std::vector<DisclosureHit> hits;
  if (target.empty()) return hits;

  // Candidate discovery (Algorithm 1's main loop over fpar). With
  // authoritative fingerprints only the OLDEST owner of each shared hash
  // can score a non-zero overlap — "p <- oldestParagraphWith(h, DBhash)" —
  // so the candidate set is bounded by |F(target)| regardless of database
  // size. This is what makes response time scale sub-linearly with the
  // hash count (paper Fig. 13).
  const HashDb& db = st.hashes[idx(sourceKind)];
  std::unordered_set<SegmentId> candidates;
  if (config_.useAuthoritative) {
    for (std::uint64_t h : target.hashes()) {
      if (const auto owner = db.oldestSegmentWith(h)) {
        candidates.insert(*owner);
      }
    }
  } else {
    // Naive containment (ablation): every segment sharing a hash competes.
    for (std::uint64_t h : target.hashes()) {
      for (SegmentId s : db.segmentsWith(h)) candidates.insert(s);
    }
  }

  for (SegmentId c : candidates) {
    if (c == self) continue;  // "if p = P then continue"
    const SegmentRecord* rec = st.segments.find(c);
    if (rec == nullptr || rec->kind != sourceKind) continue;
    if (config_.excludeSameDocument && !selfDocument.empty() &&
        rec->document == selfDocument) {
      continue;
    }
    stats_.candidatesInspected.fetch_add(1, std::memory_order_relaxed);
    trackerMetrics().candidates->inc();
    const std::size_t sourceSize = rec->fingerprint.size();
    if (sourceSize == 0) continue;
    // Early discard (Algorithm 1): a source needing more overlapping hashes
    // than the target has cannot meet its threshold.
    if (static_cast<double>(sourceSize) * rec->threshold >
        static_cast<double>(target.size())) {
      continue;
    }
    std::size_t overlap;
    if (config_.useAuthoritative) {
      overlap = authoritativeOverlap(*rec, target, db);
    } else {
      overlap = text::Fingerprint::intersectionSize(rec->fingerprint, target);
    }
    const double score =
        static_cast<double>(overlap) / static_cast<double>(sourceSize);
    if (isDisclosed(score, overlap, rec->threshold)) {
      hits.push_back(makeHit(*rec, score, overlap));
    }
  }

  std::sort(hits.begin(), hits.end(),
            [](const DisclosureHit& a, const DisclosureHit& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.source < b.source;
            });
  return hits;
}

std::vector<DisclosureHit> FlowTracker::checkText(
    sec::SensitiveView text, std::string_view excludeDocument) const {
  BF_SPAN("flow.check_text");
  const std::uint64_t fpStart = obs::stageStart();
  const text::Fingerprint fp =
      text::fingerprintText(text.raw(), config_.fingerprint);
  obs::stageEnd(obs::Stage::kFingerprint, fpStart);
  stats_.fingerprintsComputed.fetch_add(1, std::memory_order_relaxed);
  trackerMetrics().fingerprints->inc();
  util::LeftRightReadGuard guard(lr_);
  return disclosedSourcesIn(readerStores(guard), fp, SegmentKind::kParagraph,
                            kInvalidSegment, excludeDocument);
}

std::vector<DisclosureHit> FlowTracker::sourcesForSegment(SegmentId id) {
  if (config_.enableCache) {
    // Fast path: a lock-free left-right read — an unchanged fingerprint
    // serves the cached answer without any mutex, so concurrent cached
    // queries neither serialise nor wait for writers (the per-keystroke
    // common case of S6.2).
    obs::StageTimer lookupTimer(obs::Stage::kTrackerLookup);
    util::LeftRightReadGuard guard(lr_);
    const Stores& st = readerStores(guard);
    const SegmentRecord* rec = st.segments.find(id);
    if (rec == nullptr) return {};
    const auto it = st.cache.find(id);
    if (it != st.cache.end() && it->second.valid &&
        it->second.fingerprintDigest == digestOf(rec->fingerprint) &&
        it->second.removalGeneration ==
            st.hashes[idx(rec->kind)].removalGeneration()) {
      stats_.cacheHits.fetch_add(1, std::memory_order_relaxed);
      trackerMetrics().cacheHits->inc();
      return it->second.hits;
    }
  }

  // Miss (or cache disabled): recompute from the active replica under the
  // writer mutex, then install the entry into both replicas. The stores may
  // have changed since the guard was dropped, so everything is re-read —
  // including the cache entry another thread may just have filled.
  const std::uint64_t lockWait = obs::stageStart();
  util::MutexLock lock(mutex_);
  obs::stageEnd(obs::Stage::kTrackerLockWait, lockWait);
  const Stores& active =
      stores_[static_cast<std::size_t>(lr_.activeInstance())];
  const SegmentRecord* rec = active.segments.find(id);
  if (rec == nullptr) return {};

  const std::uint64_t digest = digestOf(rec->fingerprint);
  const std::uint64_t removalGen =
      active.hashes[idx(rec->kind)].removalGeneration();
  if (config_.enableCache) {
    const auto it = active.cache.find(id);
    if (it != active.cache.end() && it->second.valid &&
        it->second.fingerprintDigest == digest &&
        it->second.removalGeneration == removalGen) {
      stats_.cacheHits.fetch_add(1, std::memory_order_relaxed);
      trackerMetrics().cacheHits->inc();
      return it->second.hits;
    }
  }
  stats_.cacheMisses.fetch_add(1, std::memory_order_relaxed);
  trackerMetrics().cacheMisses->inc();
  std::vector<DisclosureHit> hits = disclosedSourcesIn(
      active, rec->fingerprint, rec->kind, id, rec->document);
  // The fill only touches the replicated cache maps, never the segment and
  // hash tables `rec` points into, so `rec`/`active` stay valid across it.
  mutateStores([&](Stores& s, WriteAheadLog*) {
    CacheEntry& entry = s.cache[id];
    entry.hits = hits;
    entry.fingerprintDigest = digest;
    entry.removalGeneration = removalGen;
    entry.valid = true;
  });
  return hits;
}

double FlowTracker::pairwiseDisclosure(SegmentId source,
                                       SegmentId target) const {
  util::LeftRightReadGuard guard(lr_);
  const Stores& st = readerStores(guard);
  const SegmentRecord* src = st.segments.find(source);
  const SegmentRecord* tgt = st.segments.find(target);
  if (src == nullptr || tgt == nullptr) return 0.0;
  if (config_.useAuthoritative) {
    return disclosureScore(*src, tgt->fingerprint, st.hashes[idx(src->kind)]);
  }
  const std::size_t total = src->fingerprint.size();
  if (total == 0) return 0.0;
  return static_cast<double>(text::Fingerprint::intersectionSize(
             src->fingerprint, tgt->fingerprint)) /
         static_cast<double>(total);
}

bool FlowTracker::setSegmentThreshold(std::string_view name,
                                      double threshold) {
  util::MutexLock lock(mutex_);
  return mutateStores([&](Stores& s, WriteAheadLog* wal) {
    const SegmentRecord* rec = s.segments.findByName(name);
    if (rec == nullptr) return false;
    s.segments.setThreshold(rec->id, threshold);
    // A source's threshold changes every other segment's query outcome.
    s.cache.clear();
    if (wal != nullptr) wal->logThresholdChanged(name, threshold);
    return true;
  });
}

std::size_t FlowTracker::evictAssociationsOlderThan(util::Timestamp cutoff) {
  util::MutexLock lock(mutex_);
  const std::size_t dropped =
      mutateStores([&](Stores& s, WriteAheadLog* wal) {
        std::size_t n = 0;
        n += s.hashes[idx(SegmentKind::kParagraph)].evictOlderThan(cutoff);
        n += s.hashes[idx(SegmentKind::kDocument)].evictOlderThan(cutoff);
        s.cache.clear();  // authority may have shifted wholesale
        if (wal != nullptr) wal->logAssociationsEvicted(cutoff);
        return n;
      });
  refreshStoreGauges();
  return dropped;
}

void FlowTracker::restoreSegment(SegmentRecord record) {
  util::MutexLock lock(mutex_);
  mutateStores([&](Stores& s, WriteAheadLog* wal) {
    if (wal != nullptr) wal->logSegmentObserved(record);
    s.segments.restore(record);  // by-value copy; applied to both replicas
  });
  refreshStoreGauges();
}

void FlowTracker::restoreAssociation(SegmentKind kind, std::uint64_t hash,
                                     SegmentId segment,
                                     util::Timestamp firstSeen) {
  // Called once per association during snapshot import; the store gauges
  // are refreshed by restoreSegment / the next observation instead of here.
  util::MutexLock lock(mutex_);
  mutateStores([&](Stores& s, WriteAheadLog* wal) {
    s.hashes[idx(kind)].recordObservation(hash, segment, firstSeen);
    if (wal != nullptr) {
      wal->logAssociationAdded(kind, hash, segment, firstSeen);
    }
  });
}

void FlowTracker::attachWal(WriteAheadLog* wal) {
  util::MutexLock lock(mutex_);
  wal_ = wal;
}

void FlowTracker::replaySegmentObserved(SegmentRecord record) {
  util::MutexLock lock(mutex_);
  // Replay runs with the WAL detached (see attachWal); the record already
  // carries its timestamps, so the closure draws nothing from the tape and
  // both replica applications are trivially identical.
  mutateStores([&](Stores& s, WriteAheadLog*) {
    const SegmentRecord* existing = s.segments.findByName(record.name);
    const SegmentId id = existing != nullptr ? existing->id : record.id;
    HashDb& db = s.hashes[idx(record.kind)];
    for (std::uint64_t h : record.fingerprint.hashes()) {
      db.recordObservation(h, id, record.updatedAt);
    }
    if (existing == nullptr) {
      s.segments.restore(record);
    } else {
      s.segments.setThreshold(id, record.threshold);
      s.segments.updateFingerprint(id, record.fingerprint, record.updatedAt);
    }
    if (auto it = s.cache.find(id); it != s.cache.end()) {
      it->second.valid = false;
    }
  });
  refreshStoreGauges();
}

std::vector<std::pair<std::size_t, std::size_t>>
FlowTracker::attributeDisclosure(SegmentId source,
                                 const text::Fingerprint& target) const {
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  util::LeftRightReadGuard guard(lr_);
  const Stores& st = readerStores(guard);
  const SegmentRecord* rec = st.segments.find(source);
  if (rec == nullptr || target.empty()) return ranges;
  const HashDb& db = st.hashes[idx(rec->kind)];
  // Each matched gram covers roughly one n-gram of source text; adjacent
  // matches merge into readable passages. The window guarantee means a
  // copied passage of >= windowChars yields at least one gram here.
  const std::size_t span = config_.fingerprint.ngramChars;
  for (const auto& gram : rec->fingerprint.grams()) {
    if (!target.contains(gram.hash)) continue;
    if (config_.useAuthoritative) {
      const auto oldest = db.oldestSegmentWith(gram.hash);
      if (!oldest || *oldest != source) continue;
    }
    const std::size_t begin = gram.pos;
    const std::size_t end = gram.pos + span;
    if (!ranges.empty() && begin <= ranges.back().second + span) {
      // Merge with the previous range when close (within one n-gram —
      // winnowing only samples, so small gaps are the same passage).
      ranges.back().second = std::max(ranges.back().second, end);
    } else {
      ranges.emplace_back(begin, end);
    }
  }
  return ranges;
}

std::optional<SegmentRecord> FlowTracker::findSegmentWithFingerprint(
    std::string_view document, const text::Fingerprint& fp,
    SegmentKind kind) const {
  if (fp.empty()) return std::nullopt;
  util::LeftRightReadGuard guard(lr_);
  std::optional<SegmentRecord> found;
  readerStores(guard).segments.forEach([&](const SegmentRecord& rec) {
    if (!found && rec.kind == kind && rec.document == document &&
        rec.fingerprint.sameHashes(fp)) {
      found = rec;
    }
  });
  return found;
}

DisclosureHit FlowTracker::makeHit(const SegmentRecord& source, double score,
                                   std::size_t overlap) const {
  DisclosureHit hit;
  hit.source = source.id;
  hit.kind = source.kind;
  hit.sourceName = source.name;
  hit.sourceDocument = source.document;
  hit.sourceService = source.service;
  hit.score = score;
  hit.overlap = overlap;
  hit.sourceFingerprintSize = source.fingerprint.size();
  hit.threshold = source.threshold;
  return hit;
}

}  // namespace bf::flow
