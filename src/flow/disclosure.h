// Disclosure metrics (paper S4.2) and authoritative fingerprints (S4.3).
//
//   D(A, B) = |F_auth(A) ∩ F(B)| / |F(A)|
//
// where F_auth(A) keeps only those hashes of F(A) whose OLDEST association
// in DBhash is A itself. This compensates for overlapping documents: a
// segment that merely re-contains text first seen elsewhere is not treated
// as the authoritative source of that text (paper Fig. 7).
#pragma once

#include <cstdint>
#include <vector>

#include "flow/hash_db.h"
#include "flow/segment_db.h"
#include "text/fingerprint.h"

namespace bf::flow {

/// The subset of `source`'s fingerprint hashes for which `source` is the
/// oldest associated segment ("F_authoritative", S4.3). Sorted ascending.
[[nodiscard]] std::vector<std::uint64_t> authoritativeHashes(
    const SegmentRecord& source, const HashDb& hashDb);

/// |F_auth(source) ∩ target|, computed without materialising F_auth.
[[nodiscard]] std::size_t authoritativeOverlap(const SegmentRecord& source,
                                               const text::Fingerprint& target,
                                               const HashDb& hashDb);

/// D(source, target) in [0, 1]. Returns 0 when |F(source)| = 0 (segments
/// too short to fingerprint are never reported as disclosed; the paper
/// excludes them, S6.1).
[[nodiscard]] double disclosureScore(const SegmentRecord& source,
                                     const text::Fingerprint& target,
                                     const HashDb& hashDb);

/// Disclosure decision: requires a non-empty overlap AND D >= threshold.
/// The non-empty requirement makes threshold 0 mean "any leaked hash
/// triggers" (paper S4.2's T_par = 0 example) instead of "always triggers".
[[nodiscard]] bool isDisclosed(double score, std::size_t overlap,
                               double threshold) noexcept;

}  // namespace bf::flow
