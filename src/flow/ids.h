// Identifiers shared by the flow-tracking stores.
#pragma once

#include <cstdint>

namespace bf::flow {

/// Opaque id of a tracked text segment. 0 is reserved as "invalid".
using SegmentId = std::uint64_t;

inline constexpr SegmentId kInvalidSegment = 0;

/// Tracking granularity (paper S4.1): paragraphs and whole documents are
/// tracked independently.
enum class SegmentKind : std::uint8_t { kParagraph = 0, kDocument = 1 };

}  // namespace bf::flow
