// SegmentDb — the paper's "DBpar" (S4.3):
//
// "The second data structure (DBpar) stores associations of paragraphs to
//  the last fingerprint that has been calculated for each paragraph."
//
// We generalise paragraphs to segments (the paper tracks paragraphs and
// whole documents independently) and also keep per-segment metadata: kind,
// owning document, originating service, and the per-segment disclosure
// threshold (T_par / T_doc are set per segment, S4.2).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "flow/ids.h"
#include "text/fingerprint.h"
#include "util/clock.h"

namespace bf::flow {

/// Metadata and latest fingerprint of one tracked segment.
struct SegmentRecord {
  SegmentId id = kInvalidSegment;
  SegmentKind kind = SegmentKind::kParagraph;
  /// Caller-chosen stable name, e.g. "wiki/page-7#p3".
  std::string name;
  /// Identity of the containing document (used to skip intra-document
  /// matches during disclosure queries).
  std::string document;
  /// Id of the cloud service the segment lives in.
  std::string service;
  /// Disclosure threshold for this segment (T_par or T_doc).
  double threshold = 0.5;
  text::Fingerprint fingerprint;
  util::Timestamp createdAt = 0;
  util::Timestamp updatedAt = 0;
};

class SegmentDb {
 public:
  /// Creates a segment; name must be unique among live segments.
  /// Returns the new id.
  SegmentId create(SegmentKind kind, std::string name, std::string document,
                   std::string service, double threshold,
                   util::Timestamp now);

  /// Replaces a segment's fingerprint ("the last fingerprint calculated").
  void updateFingerprint(SegmentId id, text::Fingerprint fp,
                         util::Timestamp now);

  /// Updates the per-segment disclosure threshold.
  void setThreshold(SegmentId id, double threshold);

  /// Lookup by id; nullptr if removed/unknown.
  [[nodiscard]] const SegmentRecord* find(SegmentId id) const;

  /// Lookup by unique name; nullptr if absent.
  [[nodiscard]] const SegmentRecord* findByName(std::string_view name) const;

  /// Removes a segment. Its id is never reused.
  void remove(SegmentId id);

  /// Number of live segments.
  [[nodiscard]] std::size_t size() const noexcept { return byId_.size(); }

  /// Applies `fn` to every live segment.
  template <typename Fn>
  void forEach(Fn&& fn) const {
    for (const auto& [id, rec] : byId_) fn(rec);
  }

  /// Restores a record with its original id (snapshot import). The id and
  /// name must be unused; the id counter advances past it.
  void restore(SegmentRecord record);

 private:
  SegmentId nextId_ = 1;
  std::unordered_map<SegmentId, SegmentRecord> byId_;
  std::unordered_map<std::string, SegmentId> byName_;
};

}  // namespace bf::flow
