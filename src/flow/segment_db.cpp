#include "flow/segment_db.h"

#include <cassert>

namespace bf::flow {

SegmentId SegmentDb::create(SegmentKind kind, std::string name,
                            std::string document, std::string service,
                            double threshold, util::Timestamp now) {
  assert(byName_.find(name) == byName_.end() && "segment name must be unique");
  const SegmentId id = nextId_++;
  SegmentRecord rec;
  rec.id = id;
  rec.kind = kind;
  rec.name = name;
  rec.document = std::move(document);
  rec.service = std::move(service);
  rec.threshold = threshold;
  rec.createdAt = now;
  rec.updatedAt = now;
  byName_.emplace(std::move(name), id);
  byId_.emplace(id, std::move(rec));
  return id;
}

void SegmentDb::updateFingerprint(SegmentId id, text::Fingerprint fp,
                                  util::Timestamp now) {
  auto it = byId_.find(id);
  if (it == byId_.end()) return;
  it->second.fingerprint = std::move(fp);
  it->second.updatedAt = now;
}

void SegmentDb::setThreshold(SegmentId id, double threshold) {
  auto it = byId_.find(id);
  if (it != byId_.end()) it->second.threshold = threshold;
}

const SegmentRecord* SegmentDb::find(SegmentId id) const {
  auto it = byId_.find(id);
  return it == byId_.end() ? nullptr : &it->second;
}

const SegmentRecord* SegmentDb::findByName(std::string_view name) const {
  auto it = byName_.find(std::string(name));
  return it == byName_.end() ? nullptr : find(it->second);
}

void SegmentDb::restore(SegmentRecord record) {
  assert(record.id != kInvalidSegment);
  assert(byId_.find(record.id) == byId_.end() && "id already in use");
  assert(byName_.find(record.name) == byName_.end() && "name already in use");
  if (record.id >= nextId_) nextId_ = record.id + 1;
  byName_.emplace(record.name, record.id);
  byId_.emplace(record.id, std::move(record));
}

void SegmentDb::remove(SegmentId id) {
  auto it = byId_.find(id);
  if (it == byId_.end()) return;
  byName_.erase(it->second.name);
  byId_.erase(it);
}

}  // namespace bf::flow
