#include "flow/disclosure.h"

namespace bf::flow {

std::vector<std::uint64_t> authoritativeHashes(const SegmentRecord& source,
                                               const HashDb& hashDb) {
  std::vector<std::uint64_t> out;
  const auto& hashes = source.fingerprint.hashes();
  out.reserve(hashes.size());
  for (std::uint64_t h : hashes) {
    const auto oldest = hashDb.oldestSegmentWith(h);
    if (oldest && *oldest == source.id) out.push_back(h);
  }
  return out;
}

std::size_t authoritativeOverlap(const SegmentRecord& source,
                                 const text::Fingerprint& target,
                                 const HashDb& hashDb) {
  std::size_t overlap = 0;
  for (std::uint64_t h : source.fingerprint.hashes()) {
    if (!target.contains(h)) continue;
    const auto oldest = hashDb.oldestSegmentWith(h);
    if (oldest && *oldest == source.id) ++overlap;
  }
  return overlap;
}

double disclosureScore(const SegmentRecord& source,
                       const text::Fingerprint& target,
                       const HashDb& hashDb) {
  const std::size_t total = source.fingerprint.size();
  if (total == 0) return 0.0;
  return static_cast<double>(authoritativeOverlap(source, target, hashDb)) /
         static_cast<double>(total);
}

bool isDisclosed(double score, std::size_t overlap,
                 double threshold) noexcept {
  return overlap > 0 && score >= threshold;
}

}  // namespace bf::flow
