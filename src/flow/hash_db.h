// HashDb — the paper's "DBhash" (S4.3):
//
// "The first data structure (DBhash) stores associations of fingerprint
//  hashes to paragraphs that have been found to contain those hashes along
//  with timestamps."
//
// For every fingerprint hash we keep the history of segments that were
// observed to contain it, ordered by first-seen timestamp. The front of the
// history answers oldestSegmentWith(h) in O(1) amortised, which both the
// authoritative-fingerprint computation and Algorithm 1 rely on.
//
// Storage is an open-addressing hash table (linear probing, power-of-two
// capacity) whose slots hold the FIRST association inline: most hashes have
// exactly one owner, so the Algorithm-1 candidate loop — one
// oldestSegmentWith probe per target hash — resolves in a single cache line
// without chasing node pointers. Hashes with multiple owners spill the rest
// of their history into a pooled overflow vector.
//
// Segment removal is lazy (a dead set consulted by lookups) but bounded:
// once the dead set exceeds a threshold, the store physically compacts the
// dead associations and clears the set, so neither the tombstones nor the
// per-lookup isDead probes accumulate forever.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_set>
#include <vector>

#include "flow/ids.h"
#include "util/clock.h"

namespace bf::flow {

class HashDb {
 public:
  /// One observation: `segment` was first seen containing a hash at
  /// `firstSeen`.
  struct Association {
    SegmentId segment;
    util::Timestamp firstSeen;
  };

  /// Dead segments tolerated before removeSegment triggers a physical
  /// compaction (see setDeadCompactionThreshold).
  static constexpr std::size_t kDefaultDeadCompactionThreshold = 64;

  /// Records that `segment` contains `hash`, first observed at `ts`.
  /// Idempotent per (hash, segment): re-observing keeps the original
  /// timestamp, so provenance ordering never changes retroactively.
  void recordObservation(std::uint64_t hash, SegmentId segment,
                         util::Timestamp ts);

  /// The oldest live segment associated with `hash`, or nullopt.
  /// This is "oldestParagraphWith(h, DBhash)" from Algorithm 1.
  [[nodiscard]] std::optional<SegmentId> oldestSegmentWith(
      std::uint64_t hash) const;

  /// All live segments associated with `hash`, oldest first.
  [[nodiscard]] std::vector<SegmentId> segmentsWith(std::uint64_t hash) const;

  /// First-seen timestamp of (hash, segment), or nullopt if unrecorded.
  [[nodiscard]] std::optional<util::Timestamp> firstSeen(
      std::uint64_t hash, SegmentId segment) const;

  /// Marks a segment dead: its associations are skipped by lookups and
  /// physically removed by the next compaction (automatic once the dead
  /// set exceeds the threshold). Increments the removal generation (used
  /// by callers to invalidate authoritative-fingerprint caches).
  void removeSegment(SegmentId segment);

  /// Physically removes every association of a dead segment and clears
  /// the dead set. Called automatically by removeSegment past the
  /// threshold; public for tests and explicit maintenance. Returns the
  /// number of associations dropped.
  std::size_t compactDead();

  /// Dead segments not yet physically purged.
  [[nodiscard]] std::size_t deadSegmentCount() const noexcept {
    return dead_.size();
  }

  /// Overrides the dead-segment compaction threshold (0 compacts on every
  /// removal). Tests use small values; production keeps the default, which
  /// amortises compaction cost over many removals.
  void setDeadCompactionThreshold(std::size_t threshold) noexcept {
    deadCompactionThreshold_ = threshold;
  }

  /// Drops all associations whose firstSeen < cutoff (and purges dead
  /// ones). Implements the paper's "periodic removal of old fingerprints"
  /// recommendation (S4.4). Returns the number of associations dropped.
  std::size_t evictOlderThan(util::Timestamp cutoff);

  /// Number of distinct hashes with at least one (possibly dead)
  /// association. Benches use this to size the store (paper Fig. 13).
  [[nodiscard]] std::size_t distinctHashCount() const noexcept {
    return occupied_;
  }

  /// Number of physically stored associations (memory accounting in
  /// benches). Associations of removed segments are counted until the
  /// next compaction purges them.
  [[nodiscard]] std::size_t associationCount() const noexcept {
    return storedAssociations_;
  }

  /// Monotone counter bumped by removeSegment/evictOlderThan. Callers cache
  /// authoritative fingerprints keyed by this generation.
  [[nodiscard]] std::uint64_t removalGeneration() const noexcept {
    return removalGeneration_;
  }

  /// Applies fn(hash, segment, firstSeen) to every LIVE association, in
  /// per-hash oldest-first order. Used by snapshot export.
  template <typename Fn>
  void forEachAssociation(Fn&& fn) const {
    for (const Slot& slot : slots_) {
      if (!slot.used) continue;
      if (!isDead(slot.first.segment)) {
        fn(slot.hash, slot.first.segment, slot.first.firstSeen);
      }
      if (slot.overflow != kNoOverflow) {
        for (const Association& a : overflow_[slot.overflow]) {
          if (!isDead(a.segment)) fn(slot.hash, a.segment, a.firstSeen);
        }
      }
    }
  }

 private:
  static constexpr std::uint32_t kNoOverflow = 0xffffffffu;

  /// One open-addressing slot: the hash, its oldest association inline,
  /// and (rarely) an index into the overflow pool for the rest of the
  /// history, kept sorted by firstSeen ascending.
  struct Slot {
    std::uint64_t hash = 0;
    Association first{kInvalidSegment, 0};
    std::uint32_t overflow = kNoOverflow;
    bool used = false;
  };

  [[nodiscard]] bool isDead(SegmentId s) const {
    return !dead_.empty() && dead_.count(s) != 0;
  }

  /// Index of `hash`'s slot, or of the empty slot where it would insert.
  /// Requires a non-empty table.
  [[nodiscard]] std::size_t probe(std::uint64_t hash) const noexcept;

  /// Ensures capacity for one more distinct hash (grows + rehashes at
  /// ~70% load).
  void reserveForInsert();

  /// Rebuilds the table keeping only associations for which `keep` returns
  /// true. Returns the number of associations dropped.
  template <typename Keep>
  std::size_t rebuildFiltered(Keep&& keep);

  std::vector<Slot> slots_;  // power-of-two size; empty until first insert
  std::size_t mask_ = 0;     // slots_.size() - 1
  std::size_t occupied_ = 0;
  std::vector<std::vector<Association>> overflow_;
  std::vector<std::uint32_t> overflowFree_;  // recyclable overflow_ indices
  std::unordered_set<SegmentId> dead_;
  std::size_t deadCompactionThreshold_ = kDefaultDeadCompactionThreshold;
  std::size_t storedAssociations_ = 0;
  std::uint64_t removalGeneration_ = 0;
};

}  // namespace bf::flow
