// HashDb — the paper's "DBhash" (S4.3):
//
// "The first data structure (DBhash) stores associations of fingerprint
//  hashes to paragraphs that have been found to contain those hashes along
//  with timestamps."
//
// For every fingerprint hash we keep the history of segments that were
// observed to contain it, ordered by first-seen timestamp. The front of the
// list answers oldestSegmentWith(h) in O(1) amortised, which both the
// authoritative-fingerprint computation and Algorithm 1 rely on.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "flow/ids.h"
#include "util/clock.h"

namespace bf::flow {

class HashDb {
 public:
  /// One observation: `segment` was first seen containing a hash at
  /// `firstSeen`.
  struct Association {
    SegmentId segment;
    util::Timestamp firstSeen;
  };

  /// Records that `segment` contains `hash`, first observed at `ts`.
  /// Idempotent per (hash, segment): re-observing keeps the original
  /// timestamp, so provenance ordering never changes retroactively.
  void recordObservation(std::uint64_t hash, SegmentId segment,
                         util::Timestamp ts);

  /// The oldest live segment associated with `hash`, or nullopt.
  /// This is "oldestParagraphWith(h, DBhash)" from Algorithm 1.
  [[nodiscard]] std::optional<SegmentId> oldestSegmentWith(
      std::uint64_t hash) const;

  /// All live segments associated with `hash`, oldest first.
  [[nodiscard]] std::vector<SegmentId> segmentsWith(std::uint64_t hash) const;

  /// First-seen timestamp of (hash, segment), or nullopt if unrecorded.
  [[nodiscard]] std::optional<util::Timestamp> firstSeen(
      std::uint64_t hash, SegmentId segment) const;

  /// Marks a segment dead: its associations are skipped by lookups and
  /// physically removed lazily. Increments the removal generation (used by
  /// callers to invalidate authoritative-fingerprint caches).
  void removeSegment(SegmentId segment);

  /// Drops all associations whose firstSeen < cutoff. Implements the
  /// paper's "periodic removal of old fingerprints" recommendation (S4.4).
  /// Returns the number of associations dropped.
  std::size_t evictOlderThan(util::Timestamp cutoff);

  /// Number of distinct hashes with at least one (possibly dead)
  /// association. Benches use this to size the store (paper Fig. 13).
  [[nodiscard]] std::size_t distinctHashCount() const noexcept {
    return table_.size();
  }

  /// Number of stored associations (for memory accounting in benches).
  /// Associations of removed segments are counted until physically purged
  /// by evictOlderThan — removal is lazy.
  [[nodiscard]] std::size_t associationCount() const noexcept {
    return liveAssociations_;
  }

  /// Monotone counter bumped by removeSegment/evictOlderThan. Callers cache
  /// authoritative fingerprints keyed by this generation.
  [[nodiscard]] std::uint64_t removalGeneration() const noexcept {
    return removalGeneration_;
  }

  /// Applies fn(hash, segment, firstSeen) to every LIVE association, in
  /// per-hash oldest-first order. Used by snapshot export.
  template <typename Fn>
  void forEachAssociation(Fn&& fn) const {
    for (const auto& [hash, entry] : table_) {
      for (const Association& a : entry.history) {
        if (!isDead(a.segment)) fn(hash, a.segment, a.firstSeen);
      }
    }
  }

 private:
  struct Entry {
    std::vector<Association> history;  // ordered by firstSeen ascending
  };

  // Segments marked dead. Associations are purged lazily on lookup.
  [[nodiscard]] bool isDead(SegmentId s) const {
    return dead_.count(s) != 0;
  }

  std::unordered_map<std::uint64_t, Entry> table_;
  std::unordered_map<SegmentId, char> dead_;
  std::size_t liveAssociations_ = 0;
  std::uint64_t removalGeneration_ = 0;
};

}  // namespace bf::flow
