// FlowTracker — imprecise data flow tracking facade (paper S4).
//
// Owns the two stores of S4.3 (HashDb = "DBhash", SegmentDb = "DBpar"),
// fingerprints observed text, and answers the information disclosure
// question: "what is the set of the original sources s in db that t
// discloses significant information from currently?" via Algorithm 1.
//
// Performance behaviour mirrors the paper (S6.2):
//  - observing an edit re-fingerprints only the edited segment;
//  - if the fingerprint is unchanged (the common case for one keystroke)
//    the previous disclosure answer is served from a per-segment cache;
//  - candidate sources are discovered only through shared hashes, so cost
//    is linear in the number of segments sharing at least one hash.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "flow/disclosure.h"
#include "flow/hash_db.h"
#include "flow/ids.h"
#include "flow/segment_db.h"
#include "obs/metrics.h"
#include "sec/sensitive.h"
#include "text/winnower.h"
#include "util/clock.h"
#include "util/left_right.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace bf::flow {

class WriteAheadLog;

/// Tracker configuration. Fingerprint defaults follow the paper's
/// evaluation setup (S6.1): 32-bit hashes, 15-char n-grams, 30-char
/// windows, T_par = T_doc = 0.5.
struct TrackerConfig {
  text::FingerprintConfig fingerprint;
  double defaultParagraphThreshold = 0.5;
  double defaultDocumentThreshold = 0.5;
  /// Skip sources living in the same document as the queried segment.
  bool excludeSameDocument = true;
  /// Use authoritative fingerprints (S4.3). Off only for ablation benches.
  bool useAuthoritative = true;
  /// Reuse the previous answer when a segment's fingerprint is unchanged.
  bool enableCache = true;
};

/// One disclosing source found by a query.
struct DisclosureHit {
  SegmentId source = kInvalidSegment;
  SegmentKind kind = SegmentKind::kParagraph;
  std::string sourceName;
  std::string sourceDocument;
  std::string sourceService;
  /// D(source, target) in [0, 1].
  double score = 0.0;
  /// |F_auth(source) ∩ F(target)|.
  std::size_t overlap = 0;
  /// |F(source)|.
  std::size_t sourceFingerprintSize = 0;
  /// The source's threshold that `score` met.
  double threshold = 0.0;
};

/// Point-in-time view of this tracker's counters, for tests and benches.
/// The live counters are atomics (queries run concurrently from the async
/// DecisionEngine worker and direct callers) and are mirrored into the
/// process-wide obs registry as bf_tracker_* metrics.
struct TrackerStats {
  std::uint64_t queries = 0;
  std::uint64_t cacheHits = 0;
  std::uint64_t cacheMisses = 0;
  std::uint64_t candidatesInspected = 0;
  std::uint64_t fingerprintsComputed = 0;
};

/// Thread safety — left-right replication (util/left_right.h, DESIGN.md
/// §15). The stores live in TWO complete replicas (stores_[2]); a
/// LeftRightControl arbitrates which replica readers see. Queries
/// (disclosedSources, checkText, pairwiseDisclosure, attributeDisclosure,
/// findSegmentWithFingerprint, and sourcesForSegment's
/// unchanged-fingerprint fast path) take NO mutex at all: they register on
/// a striped read indicator (wait-free, never retried) and read the
/// quiescent active replica with plain loads. Mutations serialise on one
/// writer mutex (util::Mutex, rank util::kRankTracker) and apply every
/// change twice — first to the replica no reader can see, then, after the
/// flip-and-drain step, to the other — so readers never observe a store
/// mid-mutation and never block behind a writer.
///
/// Accessors that hand out pointers or references into the stores
/// (segment, segmentByName — hashDb, segmentDb) are only stable while no
/// concurrent mutation runs; callers that keep them across operations must
/// serialise externally (the engine's stateMutex_ provides this on the
/// decision path). Fingerprinting runs OUTSIDE all synchronisation: it is
/// pure CPU on immutable config, so concurrent observers only serialise on
/// store updates, not on hashing.
class FlowTracker {
 public:
  /// `clock` provides observation timestamps; not owned, must outlive the
  /// tracker. The clock is only invoked under the tracker's writer mutex
  /// (through the replay tape), so a non-thread-safe LogicalClock is fine
  /// even with concurrent observers.
  FlowTracker(TrackerConfig config, util::Clock* clock);

  // ---- Observation (feeding the tracker) ----------------------------------

  /// Creates or updates a segment identified by its unique `name` with the
  /// given text. Fingerprints the text, records new hashes in DBhash, and
  /// stores the fingerprint in DBpar. Returns the segment id.
  /// `text` is raw document content: it enters as sec::SensitiveView and
  /// only its fingerprint (a declassification gate) is ever stored.
  SegmentId observeSegment(SegmentKind kind, std::string_view name,
                           std::string_view document,
                           std::string_view service, sec::SensitiveView text,
                           std::optional<double> threshold = std::nullopt)
      BF_EXCLUDES(mutex_);

  /// Observes a whole document: one document-kind segment named `docName`
  /// plus one paragraph-kind segment "docName#p<i>" per paragraph.
  /// Batched: all fingerprints are computed outside the lock (in parallel
  /// for large documents), then applied under ONE writer section with a
  /// single gauge refresh — the lock is taken once, not N+1 times.
  struct DocumentObservation {
    SegmentId document = kInvalidSegment;
    std::vector<SegmentId> paragraphs;
  };
  DocumentObservation observeDocument(
      std::string_view docName, std::string_view service,
      sec::SensitiveView fullText,
      std::optional<double> paragraphThreshold = std::nullopt,
      std::optional<double> documentThreshold = std::nullopt)
      BF_EXCLUDES(mutex_);

  /// Removes a segment (and its hash associations, lazily).
  void removeSegmentByName(std::string_view name) BF_EXCLUDES(mutex_);
  void removeSegment(SegmentId id) BF_EXCLUDES(mutex_);

  /// Updates a segment's disclosure threshold (paper S4.2: authors adjust
  /// T_par/T_doc "according to their requirements and the confidentiality
  /// of the text"). Invalidates cached decisions, since thresholds change
  /// which sources report. Returns false for unknown names.
  bool setSegmentThreshold(std::string_view name, double threshold)
      BF_EXCLUDES(mutex_);

  // ---- Queries (Algorithm 1) ----------------------------------------------

  /// Disclosing sources of kind `sourceKind` for an arbitrary fingerprint.
  /// `self` / `selfDocument` exclude the queried segment (Algorithm 1's
  /// "if p = P then continue") and, if configured, its document.
  /// Lock-free: reads the active replica under a left-right read guard.
  [[nodiscard]] std::vector<DisclosureHit> disclosedSources(
      const text::Fingerprint& target, SegmentKind sourceKind,
      SegmentId self = kInvalidSegment,
      std::string_view selfDocument = {}) const;

  /// Fingerprints `text` and queries paragraph-kind sources without
  /// registering anything — the "would uploading this leak?" path.
  /// Lock-free, like disclosedSources.
  [[nodiscard]] std::vector<DisclosureHit> checkText(
      sec::SensitiveView text, std::string_view excludeDocument = {}) const;

  /// Cached per-segment query: disclosing sources of the segment's current
  /// fingerprint. Serves the cached answer when the fingerprint is
  /// unchanged since the last call — that fast path is a lock-free
  /// left-right read, so concurrent cached queries never serialise and
  /// never wait for writers; only a cache miss takes the writer mutex to
  /// recompute and install the answer in both replicas. Returns a copy of
  /// the hits (the cache entry itself may be invalidated by a concurrent
  /// observation the moment the guard is released).
  [[nodiscard]] std::vector<DisclosureHit> sourcesForSegment(SegmentId id)
      BF_EXCLUDES(mutex_);

  /// Pairwise disclosure score D(source, target) between two registered
  /// segments (used by effectiveness benches). Lock-free read.
  [[nodiscard]] double pairwiseDisclosure(SegmentId source,
                                          SegmentId target) const;

  /// Attribution (paper S4.1): which passages of the SOURCE segment does
  /// `target` disclose? Returns merged [begin, end) byte ranges into the
  /// source's original text, covering every authoritative source hash that
  /// also appears in the target. Empty if either side is unknown/empty.
  /// Lock-free read.
  [[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>>
  attributeDisclosure(SegmentId source, const text::Fingerprint& target) const;

  /// The registered segment of `document` whose fingerprint has exactly the
  /// same hash set as `fp` (nullopt if none, or if fp is empty). Lets the
  /// upload path recognise "this outgoing text IS that tracked paragraph"
  /// and reuse its label — including user suppressions. Returns a COPY of
  /// the record: a pointer into the store would dangle the moment a
  /// concurrent observation re-applied to this replica. Lock-free read.
  [[nodiscard]] std::optional<SegmentRecord> findSegmentWithFingerprint(
      std::string_view document, const text::Fingerprint& fp,
      SegmentKind kind = SegmentKind::kParagraph) const;

  // ---- Introspection -------------------------------------------------------
  // The pointer/reference accessors below escape all synchronisation by
  // design (snapshot export, tests, benches, the plug-in's lockState()
  // sections). They read the active replica and are safe only while no
  // concurrent mutation runs; the external-serialisation contract is
  // documented in the class comment.

  [[nodiscard]] const SegmentRecord* segment(SegmentId id) const {
    util::LeftRightReadGuard guard(lr_);
    return readerStores(guard).segments.find(id);
  }
  [[nodiscard]] const SegmentRecord* segmentByName(
      std::string_view name) const {
    util::LeftRightReadGuard guard(lr_);
    return readerStores(guard).segments.findByName(name);
  }
  /// The hash store for one tracking granularity. Paragraphs and documents
  /// are tracked independently (paper S4.1), so provenance ("oldest segment
  /// with hash h") is kind-local: a document fingerprint never steals
  /// authority from its own paragraphs.
  [[nodiscard]] const HashDb& hashDb(
      SegmentKind kind = SegmentKind::kParagraph) const noexcept {
    return stores_[static_cast<std::size_t>(lr_.activeInstance())]
        .hashes[static_cast<std::size_t>(kind)];
  }
  [[nodiscard]] const SegmentDb& segmentDb() const noexcept {
    return stores_[static_cast<std::size_t>(lr_.activeInstance())].segments;
  }
  [[nodiscard]] const TrackerConfig& config() const noexcept {
    return config_;
  }
  /// Snapshot of this tracker's counters (the registry's bf_tracker_*
  /// metrics keep accumulating process-wide and are not reset by
  /// resetStats()).
  [[nodiscard]] TrackerStats stats() const noexcept {
    TrackerStats out;
    out.queries = stats_.queries.load(std::memory_order_relaxed);
    out.cacheHits = stats_.cacheHits.load(std::memory_order_relaxed);
    out.cacheMisses = stats_.cacheMisses.load(std::memory_order_relaxed);
    out.candidatesInspected =
        stats_.candidatesInspected.load(std::memory_order_relaxed);
    out.fingerprintsComputed =
        stats_.fingerprintsComputed.load(std::memory_order_relaxed);
    return out;
  }
  void resetStats() noexcept {
    stats_.queries.store(0, std::memory_order_relaxed);
    stats_.cacheHits.store(0, std::memory_order_relaxed);
    stats_.cacheMisses.store(0, std::memory_order_relaxed);
    stats_.candidatesInspected.store(0, std::memory_order_relaxed);
    stats_.fingerprintsComputed.store(0, std::memory_order_relaxed);
  }

  /// Fingerprint helper using this tracker's configuration. A declassification
  /// gate (sec/sensitive.h): the winnowed hash set is non-invertible.
  [[nodiscard]] text::Fingerprint fingerprintOf(sec::SensitiveView text) const {
    return text::fingerprintText(text.raw(), config_.fingerprint);
  }

  // ---- Maintenance & snapshot support ---------------------------------------

  /// Drops all hash associations first seen before `cutoff` (the paper's
  /// "periodic removal of old fingerprints", S4.4). Segments themselves
  /// stay; they regain associations when next observed. Returns the number
  /// of associations dropped.
  std::size_t evictAssociationsOlderThan(util::Timestamp cutoff)
      BF_EXCLUDES(mutex_);

  /// Restores a segment exported by flow::exportState(). The id and name
  /// must be unused.
  void restoreSegment(SegmentRecord record) BF_EXCLUDES(mutex_);

  /// Restores one hash association with its original first-seen timestamp.
  void restoreAssociation(SegmentKind kind, std::uint64_t hash,
                          SegmentId segment, util::Timestamp firstSeen)
      BF_EXCLUDES(mutex_);

  // ---- Durability (flow/wal.h) ----------------------------------------------

  /// Attaches a write-ahead log: every subsequent mutation appends one
  /// record inside the same writer section that applies it (on the FIRST
  /// of its two replica applications), so the log order is exactly the
  /// mutation order and each mutation is logged exactly once. Pass nullptr
  /// to detach (the recovery path replays with the WAL detached so replay
  /// is not re-logged). The log is not owned and must outlive the
  /// attachment.
  void attachWal(WriteAheadLog* wal) BF_EXCLUDES(mutex_);

  /// Applies one WAL kSegmentObserved record: create-or-update the segment
  /// with the exact recorded ids, timestamps and fingerprint, recording the
  /// fingerprint's hash associations at the record's updatedAt (idempotent
  /// per (hash, segment), so re-observed hashes keep their original
  /// first-seen — the same outcome the live observation produced).
  void replaySegmentObserved(SegmentRecord record) BF_EXCLUDES(mutex_);

 private:
  struct CacheEntry {
    std::uint64_t fingerprintDigest = 0;
    std::uint64_t removalGeneration = 0;
    std::vector<DisclosureHit> hits;
    bool valid = false;
  };

  /// One complete replica of the tracker's mutable state. Left-right keeps
  /// two of these; every mutation is applied to both (one at a time, with
  /// a reader drain in between), so either replica alone answers any
  /// query. The decision cache is replicated too: a cache fill is a store
  /// mutation like any other.
  struct Stores {
    HashDb hashes[2];  // indexed by SegmentKind
    SegmentDb segments;
    std::unordered_map<SegmentId, CacheEntry> cache;
  };

  /// Deterministic clock for double-applied mutations. The first
  /// application records every now() it draws; rewind() makes the second
  /// application replay the identical timestamps, keeping the two replicas
  /// bit-identical even though the underlying clock moved on between the
  /// applications.
  class ClockTape {
   public:
    explicit ClockTape(util::Clock* clock) noexcept : clock_(clock) {}
    [[nodiscard]] util::Timestamp now() {
      if (pos_ < tape_.size()) return tape_[pos_++];
      tape_.push_back(clock_->now());
      pos_ = tape_.size();
      return tape_.back();
    }
    void reset() noexcept {
      tape_.clear();
      pos_ = 0;
    }
    void rewind() noexcept { pos_ = 0; }

   private:
    util::Clock* clock_;
    std::vector<util::Timestamp> tape_;
    std::size_t pos_ = 0;
  };

  [[nodiscard]] static std::uint64_t digestOf(const text::Fingerprint& fp);
  [[nodiscard]] DisclosureHit makeHit(const SegmentRecord& source,
                                      double score, std::size_t overlap) const;

  [[nodiscard]] static constexpr std::size_t idx(SegmentKind kind) noexcept {
    return static_cast<std::size_t>(kind);
  }

  /// The replica a left-right reader may touch.
  [[nodiscard]] const Stores& readerStores(
      const util::LeftRightReadGuard& guard) const noexcept {
    return stores_[static_cast<std::size_t>(guard.instance())];
  }

  /// Writer protocol: applies `fn(Stores&, WriteAheadLog*)` to BOTH
  /// replicas. The first application runs on the replica no reader is
  /// directed at, with the attached WAL (so each mutation is logged exactly
  /// once); then flipAndWait() publishes it and drains every reader from
  /// the old replica; then the second application re-converges that replica
  /// with a null WAL. tape_ replays the first application's clock draws
  /// into the second, so the replicas stay identical. Returns the FIRST
  /// application's result. Must run under mutex_ (single writer).
  template <typename Fn>
  auto mutateStores(Fn&& fn) BF_REQUIRES(mutex_) {
    tape_.reset();
    using R = std::invoke_result_t<Fn&, Stores&, WriteAheadLog*>;
    if constexpr (std::is_void_v<R>) {
      fn(stores_[static_cast<std::size_t>(lr_.inactiveInstance())], wal_);
      lr_.flipAndWait();
      tape_.rewind();
      fn(stores_[static_cast<std::size_t>(lr_.inactiveInstance())], nullptr);
    } else {
      R out = fn(stores_[static_cast<std::size_t>(lr_.inactiveInstance())],
                 wal_);
      lr_.flipAndWait();
      tape_.rewind();
      fn(stores_[static_cast<std::size_t>(lr_.inactiveInstance())], nullptr);
      return out;
    }
  }

  /// Registers `fp` (already computed, OUTSIDE the lock) for the segment in
  /// replica `s`, logging to `wal` when non-null. Runs once per replica via
  /// mutateStores; draws timestamps from tape_ so both runs agree. Does NOT
  /// refresh the store gauges — callers batch mutations and refresh once
  /// per writer section.
  SegmentId observeSegmentIn(Stores& s, WriteAheadLog* wal, SegmentKind kind,
                             std::string_view name, std::string_view document,
                             std::string_view service,
                             const text::Fingerprint& fp,
                             std::optional<double> threshold)
      BF_REQUIRES(mutex_);

  void removeSegmentIn(Stores& s, WriteAheadLog* wal, SegmentId id)
      BF_REQUIRES(mutex_);

  /// Pure read of one replica: Algorithm 1 over `s`. Runs under a
  /// left-right read guard (query paths) or the writer mutex
  /// (sourcesForSegment's recompute) — either way the replica is quiescent.
  [[nodiscard]] std::vector<DisclosureHit> disclosedSourcesIn(
      const Stores& s, const text::Fingerprint& target,
      SegmentKind sourceKind, SegmentId self,
      std::string_view selfDocument) const;

  /// Pushes the active replica's DBhash/DBpar sizes into the registry
  /// gauges. Writer-side (the active replica is stable under mutex_).
  void refreshStoreGauges() const noexcept BF_REQUIRES(mutex_);

  /// Live per-instance counters behind the TrackerStats view. Incremented
  /// with relaxed atomics from const query paths, which the async decision
  /// worker and direct callers reach concurrently.
  struct AtomicStats {
    std::atomic<std::uint64_t> queries{0};
    std::atomic<std::uint64_t> cacheHits{0};
    std::atomic<std::uint64_t> cacheMisses{0};
    std::atomic<std::uint64_t> candidatesInspected{0};
    std::atomic<std::uint64_t> fingerprintsComputed{0};
  };

  TrackerConfig config_;  // immutable after construction
  /// Writer-side mutex: serialises mutations (and the clock tape and WAL
  /// they use). Readers never touch it — the left-right protocol keeps
  /// them out of the replica being mutated. Ranked below the engine's
  /// stateMutex_ in the documented hierarchy, like the reader-writer lock
  /// it replaced.
  util::Mutex mutex_{util::kRankTracker, "FlowTracker.mutex_"};
  /// Left-right switch over stores_ (which replica readers see, reader
  /// presence indicators, writer flip-and-drain).
  util::LeftRightControl lr_;
  /// The two store replicas. NOT mutex-guarded by design: readers access
  /// the active replica with no lock at all; the left-right protocol (not
  /// the mutex) is what keeps reads race-free. Writers touch replicas only
  /// through mutateStores under mutex_.
  Stores stores_[2];
  ClockTape tape_ BF_GUARDED_BY(mutex_);
  /// Optional durability log; the first replica application of each
  /// mutation appends to it while holding the writer mutex (flow/wal.h),
  /// so log order is mutation order. Not owned.
  WriteAheadLog* wal_ BF_GUARDED_BY(mutex_) = nullptr;
  mutable AtomicStats stats_;
};

}  // namespace bf::flow
