// FlowTracker — imprecise data flow tracking facade (paper S4).
//
// Owns the two stores of S4.3 (HashDb = "DBhash", SegmentDb = "DBpar"),
// fingerprints observed text, and answers the information disclosure
// question: "what is the set of the original sources s in db that t
// discloses significant information from currently?" via Algorithm 1.
//
// Performance behaviour mirrors the paper (S6.2):
//  - observing an edit re-fingerprints only the edited segment;
//  - if the fingerprint is unchanged (the common case for one keystroke)
//    the previous disclosure answer is served from a per-segment cache;
//  - candidate sources are discovered only through shared hashes, so cost
//    is linear in the number of segments sharing at least one hash.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "flow/disclosure.h"
#include "flow/hash_db.h"
#include "flow/ids.h"
#include "flow/segment_db.h"
#include "obs/metrics.h"
#include "sec/sensitive.h"
#include "text/winnower.h"
#include "util/clock.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace bf::flow {

class WriteAheadLog;

/// Tracker configuration. Fingerprint defaults follow the paper's
/// evaluation setup (S6.1): 32-bit hashes, 15-char n-grams, 30-char
/// windows, T_par = T_doc = 0.5.
struct TrackerConfig {
  text::FingerprintConfig fingerprint;
  double defaultParagraphThreshold = 0.5;
  double defaultDocumentThreshold = 0.5;
  /// Skip sources living in the same document as the queried segment.
  bool excludeSameDocument = true;
  /// Use authoritative fingerprints (S4.3). Off only for ablation benches.
  bool useAuthoritative = true;
  /// Reuse the previous answer when a segment's fingerprint is unchanged.
  bool enableCache = true;
};

/// One disclosing source found by a query.
struct DisclosureHit {
  SegmentId source = kInvalidSegment;
  SegmentKind kind = SegmentKind::kParagraph;
  std::string sourceName;
  std::string sourceDocument;
  std::string sourceService;
  /// D(source, target) in [0, 1].
  double score = 0.0;
  /// |F_auth(source) ∩ F(target)|.
  std::size_t overlap = 0;
  /// |F(source)|.
  std::size_t sourceFingerprintSize = 0;
  /// The source's threshold that `score` met.
  double threshold = 0.0;
};

/// Point-in-time view of this tracker's counters, for tests and benches.
/// The live counters are atomics (queries run concurrently from the async
/// DecisionEngine worker and direct callers) and are mirrored into the
/// process-wide obs registry as bf_tracker_* metrics.
struct TrackerStats {
  std::uint64_t queries = 0;
  std::uint64_t cacheHits = 0;
  std::uint64_t cacheMisses = 0;
  std::uint64_t candidatesInspected = 0;
  std::uint64_t fingerprintsComputed = 0;
};

/// Thread safety: every observation/query entry point is internally
/// synchronised by one per-tracker reader-writer lock (util::SharedMutex,
/// rank util::kRankTracker), so a tracker can be shared by the async
/// DecisionEngine worker and direct callers. Queries (disclosedSources,
/// checkText, pairwiseDisclosure, attributeDisclosure,
/// findSegmentWithFingerprint, and sourcesForSegment's unchanged-fingerprint
/// fast path) take the lock SHARED and run concurrently with each other;
/// observations and removals take it exclusively. Accessors that hand out
/// pointers or references into the stores (segment, segmentByName — hashDb,
/// segmentDb) are only stable while no concurrent mutation runs; callers
/// that keep them across operations must serialise externally (the engine's
/// stateMutex_ provides this on the decision path). Fingerprinting runs
/// OUTSIDE the lock: it is pure CPU on immutable config, so concurrent
/// observers only serialise on store updates, not on hashing.
class FlowTracker {
 public:
  /// `clock` provides observation timestamps; not owned, must outlive the
  /// tracker. The clock is only invoked under the tracker's mutex, so a
  /// non-thread-safe LogicalClock is fine even with concurrent observers.
  FlowTracker(TrackerConfig config, util::Clock* clock);

  // ---- Observation (feeding the tracker) ----------------------------------

  /// Creates or updates a segment identified by its unique `name` with the
  /// given text. Fingerprints the text, records new hashes in DBhash, and
  /// stores the fingerprint in DBpar. Returns the segment id.
  /// `text` is raw document content: it enters as sec::SensitiveView and
  /// only its fingerprint (a declassification gate) is ever stored.
  SegmentId observeSegment(SegmentKind kind, std::string_view name,
                           std::string_view document,
                           std::string_view service, sec::SensitiveView text,
                           std::optional<double> threshold = std::nullopt)
      BF_EXCLUDES(mutex_);

  /// Observes a whole document: one document-kind segment named `docName`
  /// plus one paragraph-kind segment "docName#p<i>" per paragraph.
  /// Batched: all fingerprints are computed outside the lock (in parallel
  /// for large documents), then applied under ONE exclusive section with a
  /// single gauge refresh — the lock is taken once, not N+1 times.
  struct DocumentObservation {
    SegmentId document = kInvalidSegment;
    std::vector<SegmentId> paragraphs;
  };
  DocumentObservation observeDocument(
      std::string_view docName, std::string_view service,
      sec::SensitiveView fullText,
      std::optional<double> paragraphThreshold = std::nullopt,
      std::optional<double> documentThreshold = std::nullopt)
      BF_EXCLUDES(mutex_);

  /// Removes a segment (and its hash associations, lazily).
  void removeSegmentByName(std::string_view name) BF_EXCLUDES(mutex_);
  void removeSegment(SegmentId id) BF_EXCLUDES(mutex_);

  /// Updates a segment's disclosure threshold (paper S4.2: authors adjust
  /// T_par/T_doc "according to their requirements and the confidentiality
  /// of the text"). Invalidates cached decisions, since thresholds change
  /// which sources report. Returns false for unknown names.
  bool setSegmentThreshold(std::string_view name, double threshold)
      BF_EXCLUDES(mutex_);

  // ---- Queries (Algorithm 1) ----------------------------------------------

  /// Disclosing sources of kind `sourceKind` for an arbitrary fingerprint.
  /// `self` / `selfDocument` exclude the queried segment (Algorithm 1's
  /// "if p = P then continue") and, if configured, its document.
  [[nodiscard]] std::vector<DisclosureHit> disclosedSources(
      const text::Fingerprint& target, SegmentKind sourceKind,
      SegmentId self = kInvalidSegment,
      std::string_view selfDocument = {}) const BF_EXCLUDES(mutex_);

  /// Fingerprints `text` and queries paragraph-kind sources without
  /// registering anything — the "would uploading this leak?" path.
  [[nodiscard]] std::vector<DisclosureHit> checkText(
      sec::SensitiveView text, std::string_view excludeDocument = {}) const
      BF_EXCLUDES(mutex_);

  /// Cached per-segment query: disclosing sources of the segment's current
  /// fingerprint. Serves the cached answer when the fingerprint is
  /// unchanged since the last call — that fast path holds the lock SHARED,
  /// so concurrent cached queries never serialise; only a cache miss
  /// upgrades to an exclusive hold to store the recomputed answer. Returns
  /// a copy of the hits (the cache entry itself may be invalidated by a
  /// concurrent observation the moment the tracker's lock is released).
  [[nodiscard]] std::vector<DisclosureHit> sourcesForSegment(SegmentId id)
      BF_EXCLUDES(mutex_);

  /// Pairwise disclosure score D(source, target) between two registered
  /// segments (used by effectiveness benches).
  [[nodiscard]] double pairwiseDisclosure(SegmentId source,
                                          SegmentId target) const
      BF_EXCLUDES(mutex_);

  /// Attribution (paper S4.1): which passages of the SOURCE segment does
  /// `target` disclose? Returns merged [begin, end) byte ranges into the
  /// source's original text, covering every authoritative source hash that
  /// also appears in the target. Empty if either side is unknown/empty.
  [[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>>
  attributeDisclosure(SegmentId source, const text::Fingerprint& target) const
      BF_EXCLUDES(mutex_);

  /// The registered segment of `document` whose fingerprint has exactly the
  /// same hash set as `fp` (nullopt if none, or if fp is empty). Lets the
  /// upload path recognise "this outgoing text IS that tracked paragraph"
  /// and reuse its label — including user suppressions. Returns a COPY of
  /// the record: a pointer into the store would dangle the moment the lock
  /// is released and a concurrent observation rehashed the segment table.
  [[nodiscard]] std::optional<SegmentRecord> findSegmentWithFingerprint(
      std::string_view document, const text::Fingerprint& fp,
      SegmentKind kind = SegmentKind::kParagraph) const BF_EXCLUDES(mutex_);

  // ---- Introspection -------------------------------------------------------
  // The pointer/reference accessors below escape the tracker's mutex by
  // design (snapshot export, tests, benches, the plug-in's lockState()
  // sections). They are safe only while no concurrent mutation runs; the
  // analysis is disabled for them, and the external-serialisation contract
  // is documented in the class comment.

  [[nodiscard]] const SegmentRecord* segment(SegmentId id) const
      BF_NO_THREAD_SAFETY_ANALYSIS {
    util::SharedReaderLock lock(mutex_);
    return segments_.find(id);
  }
  [[nodiscard]] const SegmentRecord* segmentByName(std::string_view name) const
      BF_NO_THREAD_SAFETY_ANALYSIS {
    util::SharedReaderLock lock(mutex_);
    return segments_.findByName(name);
  }
  /// The hash store for one tracking granularity. Paragraphs and documents
  /// are tracked independently (paper S4.1), so provenance ("oldest segment
  /// with hash h") is kind-local: a document fingerprint never steals
  /// authority from its own paragraphs.
  [[nodiscard]] const HashDb& hashDb(
      SegmentKind kind = SegmentKind::kParagraph) const noexcept
      BF_NO_THREAD_SAFETY_ANALYSIS {
    return hashes_[static_cast<std::size_t>(kind)];
  }
  [[nodiscard]] const SegmentDb& segmentDb() const noexcept
      BF_NO_THREAD_SAFETY_ANALYSIS {
    return segments_;
  }
  [[nodiscard]] const TrackerConfig& config() const noexcept {
    return config_;
  }
  /// Snapshot of this tracker's counters (the registry's bf_tracker_*
  /// metrics keep accumulating process-wide and are not reset by
  /// resetStats()).
  [[nodiscard]] TrackerStats stats() const noexcept {
    TrackerStats out;
    out.queries = stats_.queries.load(std::memory_order_relaxed);
    out.cacheHits = stats_.cacheHits.load(std::memory_order_relaxed);
    out.cacheMisses = stats_.cacheMisses.load(std::memory_order_relaxed);
    out.candidatesInspected =
        stats_.candidatesInspected.load(std::memory_order_relaxed);
    out.fingerprintsComputed =
        stats_.fingerprintsComputed.load(std::memory_order_relaxed);
    return out;
  }
  void resetStats() noexcept {
    stats_.queries.store(0, std::memory_order_relaxed);
    stats_.cacheHits.store(0, std::memory_order_relaxed);
    stats_.cacheMisses.store(0, std::memory_order_relaxed);
    stats_.candidatesInspected.store(0, std::memory_order_relaxed);
    stats_.fingerprintsComputed.store(0, std::memory_order_relaxed);
  }

  /// Fingerprint helper using this tracker's configuration. A declassification
  /// gate (sec/sensitive.h): the winnowed hash set is non-invertible.
  [[nodiscard]] text::Fingerprint fingerprintOf(sec::SensitiveView text) const {
    return text::fingerprintText(text.raw(), config_.fingerprint);
  }

  // ---- Maintenance & snapshot support ---------------------------------------

  /// Drops all hash associations first seen before `cutoff` (the paper's
  /// "periodic removal of old fingerprints", S4.4). Segments themselves
  /// stay; they regain associations when next observed. Returns the number
  /// of associations dropped.
  std::size_t evictAssociationsOlderThan(util::Timestamp cutoff)
      BF_EXCLUDES(mutex_);

  /// Restores a segment exported by flow::exportState(). The id and name
  /// must be unused.
  void restoreSegment(SegmentRecord record) BF_EXCLUDES(mutex_);

  /// Restores one hash association with its original first-seen timestamp.
  void restoreAssociation(SegmentKind kind, std::uint64_t hash,
                          SegmentId segment, util::Timestamp firstSeen)
      BF_EXCLUDES(mutex_);

  // ---- Durability (flow/wal.h) ----------------------------------------------

  /// Attaches a write-ahead log: every subsequent mutation appends one
  /// record inside the same exclusive-lock section that applies it, so the
  /// log order is exactly the mutation order. Pass nullptr to detach (the
  /// recovery path replays with the WAL detached so replay is not
  /// re-logged). The log is not owned and must outlive the attachment.
  void attachWal(WriteAheadLog* wal) BF_EXCLUDES(mutex_);

  /// Applies one WAL kSegmentObserved record: create-or-update the segment
  /// with the exact recorded ids, timestamps and fingerprint, recording the
  /// fingerprint's hash associations at the record's updatedAt (idempotent
  /// per (hash, segment), so re-observed hashes keep their original
  /// first-seen — the same outcome the live observation produced).
  void replaySegmentObserved(SegmentRecord record) BF_EXCLUDES(mutex_);

 private:
  struct CacheEntry {
    std::uint64_t fingerprintDigest = 0;
    std::uint64_t removalGeneration = 0;
    std::vector<DisclosureHit> hits;
    bool valid = false;
  };

  [[nodiscard]] static std::uint64_t digestOf(const text::Fingerprint& fp);
  [[nodiscard]] DisclosureHit makeHit(const SegmentRecord& source,
                                      double score, std::size_t overlap) const;

  /// Registers `fp` (already computed, OUTSIDE the lock) for the segment.
  /// Does NOT refresh the store gauges — callers batch mutations and
  /// refresh once per exclusive section.
  SegmentId observeSegmentLocked(SegmentKind kind, std::string_view name,
                                 std::string_view document,
                                 std::string_view service,
                                 text::Fingerprint fp,
                                 std::optional<double> threshold)
      BF_REQUIRES(mutex_);

  /// Pure read of the stores: runs under a shared OR exclusive hold.
  [[nodiscard]] std::vector<DisclosureHit> disclosedSourcesLocked(
      const text::Fingerprint& target, SegmentKind sourceKind, SegmentId self,
      std::string_view selfDocument) const BF_REQUIRES_SHARED(mutex_);

  void removeSegmentLocked(SegmentId id) BF_REQUIRES(mutex_);

  [[nodiscard]] HashDb& hashDbFor(SegmentKind kind) noexcept
      BF_REQUIRES(mutex_) {
    return hashes_[static_cast<std::size_t>(kind)];
  }
  [[nodiscard]] const HashDb& hashDbLocked(SegmentKind kind) const noexcept
      BF_REQUIRES_SHARED(mutex_) {
    return hashes_[static_cast<std::size_t>(kind)];
  }

  /// Pushes the current DBhash/DBpar sizes into the registry gauges.
  void refreshStoreGaugesLocked() const noexcept BF_REQUIRES_SHARED(mutex_);

  /// Live per-instance counters behind the TrackerStats view. Incremented
  /// with relaxed atomics from const query paths, which the async decision
  /// worker and direct callers reach concurrently.
  struct AtomicStats {
    std::atomic<std::uint64_t> queries{0};
    std::atomic<std::uint64_t> cacheHits{0};
    std::atomic<std::uint64_t> cacheMisses{0};
    std::atomic<std::uint64_t> candidatesInspected{0};
    std::atomic<std::uint64_t> fingerprintsComputed{0};
  };

  TrackerConfig config_;  // immutable after construction
  /// Reader-writer lock over the stores and the decision cache; ranked
  /// below the engine's stateMutex_ in the documented hierarchy. Queries
  /// hold it shared, mutations exclusively.
  mutable util::SharedMutex mutex_{util::kRankTracker, "FlowTracker.mutex_"};
  util::Clock* clock_ BF_PT_GUARDED_BY(mutex_);
  HashDb hashes_[2] BF_GUARDED_BY(mutex_);  // indexed by SegmentKind
  SegmentDb segments_ BF_GUARDED_BY(mutex_);
  /// Optional durability log; mutations append to it while still holding
  /// the exclusive lock (flow/wal.h). Not owned.
  WriteAheadLog* wal_ BF_GUARDED_BY(mutex_) = nullptr;
  std::unordered_map<SegmentId, CacheEntry> cache_ BF_GUARDED_BY(mutex_);
  mutable AtomicStats stats_;
};

}  // namespace bf::flow
