#include "flow/wal.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <optional>
#include <utility>

#include "flow/snapshot.h"
#include "obs/metrics.h"
#include "obs/stage.h"
#include "util/binary_io.h"
#include "util/crc32c.h"
#include "util/stopwatch.h"

namespace bf::flow {

namespace {

constexpr std::string_view kWalMagic = "BFWAL001";
constexpr std::size_t kWalHeaderBytes = 8 + 8;  // magic + baseSequence
/// Frames larger than this cannot have been written by us: treat the length
/// prefix itself as corrupt instead of trusting it.
constexpr std::uint32_t kMaxFrameBytes = 1u << 30;
/// User-space frame buffer flush threshold: one write() per this many
/// bytes instead of one per record keeps the syscall off the decision
/// path (bench_stress_concurrency's wal_overhead phase).
constexpr std::size_t kFlushBytes = 64u << 10;

/// Durability metrics, resolved once (same pattern as trackerMetrics()).
struct WalMetrics {
  obs::Counter* appends;
  obs::Counter* appendFailures;
  obs::Counter* bytesWritten;
  obs::Counter* syncs;
  obs::Counter* recordsLost;
  obs::Gauge* health;
  obs::Counter* repairs;
  obs::Counter* repairFailures;
  obs::Counter* checkpoints;
  obs::Counter* checkpointFailures;
  obs::Gauge* checkpointLastMs;
  obs::Histogram* checkpointDurationUs;
  obs::Gauge* storageBytes;
  obs::Counter* pressurePrunes;
  obs::Counter* recoveryRuns;
  obs::Counter* recoveryReplayedRecords;
  obs::Counter* recoveryDiscardedBytes;
  obs::Counter* recoveryFallbacks;
  obs::Gauge* recoveryLastReplayMs;
};

const WalMetrics& walMetrics() {
  static const WalMetrics m = [] {
    obs::MetricsRegistry& r = obs::registry();
    WalMetrics out;
    out.appends =
        &r.counter("bf_wal_appends_total", "WAL records appended");
    out.appendFailures = &r.counter(
        "bf_wal_append_failures_total",
        "WAL appends dropped (I/O failure or injected fault); the log is "
        "unhealthy until the next successful checkpoint rotation");
    out.bytesWritten =
        &r.counter("bf_wal_bytes_written_total", "Bytes appended to the WAL");
    out.syncs = &r.counter("bf_wal_syncs_total", "WAL fsync calls");
    out.recordsLost = &r.counter(
        "bf_wal_records_lost_total",
        "Tracker mutations whose WAL record could not be made durable "
        "(upper bound; the repair checkpoint re-covers the state)");
    out.health = &r.gauge(
        "bf_wal_health",
        "Durability health: 0 healthy, 1 degraded, 2 recovering");
    out.repairs = &r.counter(
        "bf_wal_repairs_total",
        "Successful durability repairs (emergency checkpoint + rotation)");
    out.repairFailures = &r.counter("bf_wal_repair_failures_total",
                                    "Durability repair attempts that failed");
    out.checkpoints =
        &r.counter("bf_checkpoints_total", "Durability checkpoints written");
    out.checkpointFailures = &r.counter("bf_checkpoint_failures_total",
                                        "Durability checkpoints that failed");
    out.checkpointLastMs = &r.gauge(
        "bf_checkpoint_last_ms", "Wall time of the last checkpoint write");
    out.checkpointDurationUs = &r.histogram(
        "bf_checkpoint_duration_us",
        "Checkpoint wall time in microseconds (runs on the decision path "
        "under the engine state lock, so the tail here is decision latency)",
        {100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000,
         250000, 500000, 1000000, 5000000});
    out.storageBytes = &r.gauge(
        "bf_storage_bytes",
        "Bytes across checkpoint + WAL files at the last maintenance scan");
    out.pressurePrunes = &r.counter(
        "bf_storage_pressure_prunes_total",
        "Aggressive prunes triggered by the byte quota (disk pressure)");
    out.recoveryRuns =
        &r.counter("bf_recovery_runs_total", "Crash recoveries performed");
    out.recoveryReplayedRecords =
        &r.counter("bf_recovery_replayed_records_total",
                   "WAL records replayed during recovery");
    out.recoveryDiscardedBytes =
        &r.counter("bf_recovery_discarded_bytes_total",
                   "WAL bytes discarded at torn/corrupt tails");
    out.recoveryFallbacks =
        &r.counter("bf_recovery_fallback_checkpoints_total",
                   "Recoveries that skipped a corrupt newest checkpoint");
    out.recoveryLastReplayMs = &r.gauge(
        "bf_recovery_last_replay_ms",
        "Checkpoint load + WAL replay wall time of the last recovery");
    return out;
  }();
  return m;
}

}  // namespace

// ---- WriteAheadLog ----------------------------------------------------------

WriteAheadLog::~WriteAheadLog() { close(); }

util::Status WriteAheadLog::open(const std::string& path,
                                 std::uint64_t baseSequence,
                                 bool syncEachAppend, io::Vfs* vfs) {
  util::MutexLock lock(mutex_);
  closeLocked();
  vfs_ = vfs != nullptr ? vfs : &io::defaultVfs();
  file_ = vfs_->openForWrite(path);
  if (file_ == nullptr) {
    healthy_ = false;
    return util::Status::error("cannot open WAL: " + path);
  }
  std::string header;
  header.append(kWalMagic);
  util::putU64(header, baseSequence);
  if (!file_->write(header).ok || !file_->sync()) {
    poisonLocked();
    healthy_ = false;
    return util::Status::error("cannot write WAL header: " + path);
  }
  walMetrics().syncs->inc();
  path_ = path;
  nextSeq_ = baseSequence + 1;
  appended_ = 0;
  syncEachAppend_ = syncEachAppend;
  healthy_ = true;
  return {};
}

void WriteAheadLog::close() {
  util::MutexLock lock(mutex_);
  closeLocked();
  healthy_ = false;
}

void WriteAheadLog::closeLocked() {
  if (file_ != nullptr) {
    (void)flushLocked();  // may poison the file on failure
    if (file_ != nullptr) {
      (void)file_->sync();
      (void)file_->close();
      file_.reset();
    }
  }
  buffer_.clear();
  bufferedRecords_ = 0;
}

void WriteAheadLog::poisonLocked() {
  // Abandon the file: its tail may be torn, which is exactly the shape
  // recovery's CRC/continuity checks discard. The next rotation supersedes
  // it with a fresh segment.
  if (file_ != nullptr) {
    (void)file_->close();
    file_.reset();
  }
}

util::Status WriteAheadLog::rotate(const std::string& path,
                                   std::uint64_t baseSequence) {
  // open() already closes the previous file after taking the lock; rotate
  // is just open() with checkpoint-supplied parameters (and the Vfs the
  // log was opened with).
  io::Vfs* vfs;
  bool sea;
  {
    util::MutexLock lock(mutex_);
    vfs = vfs_;
    sea = syncEachAppend_;
  }
  return open(path, baseSequence, sea, vfs);
}

bool WriteAheadLog::syncEachAppend() const {
  util::MutexLock lock(mutex_);
  return syncEachAppend_;
}

void WriteAheadLog::append(WalRecordType type, const std::string& body) {
  // Covers lock wait + frame serialisation + any flush this append triggers.
  obs::StageTimer walTimer(obs::Stage::kWalAppend);
  const WalMetrics& m = walMetrics();
  util::MutexLock lock(mutex_);
  if (failNext_ > 0 || !healthy_ || file_ == nullptr) {
    // Dropped — but the sequence is still consumed. Sequences are the
    // bridge between the in-memory state and the durable record; keeping
    // them monotonic means the repair checkpoint (taken at the last
    // assigned sequence) provably covers every dropped record, and an
    // already-written prefix never collides with a reused sequence.
    if (failNext_ > 0) --failNext_;
    healthy_ = false;
    ++nextSeq_;
    ++lost_;
    m.appendFailures->inc();
    m.recordsLost->inc();
    return;
  }
  // Serialise the frame directly into the flush buffer, then patch the
  // length/CRC prefix in place — no intermediate payload copy.
  const std::size_t frameStart = buffer_.size();
  buffer_.append(8, '\0');  // u32 payloadLen | u32 maskedCrc placeholders
  util::putU64(buffer_, nextSeq_);
  util::putU8(buffer_, static_cast<std::uint8_t>(type));
  buffer_.append(body);
  const std::size_t payloadLen = buffer_.size() - frameStart - 8;
  const std::string_view payload(buffer_.data() + frameStart + 8, payloadLen);
  const std::uint32_t crc = util::maskCrc32c(util::crc32c(payload));
  for (int i = 0; i < 4; ++i) {
    buffer_[frameStart + i] =
        static_cast<char>(static_cast<std::uint32_t>(payloadLen) >> (8 * i));
    buffer_[frameStart + 4 + i] = static_cast<char>(crc >> (8 * i));
  }
  const std::size_t frameSize = 8 + payloadLen;
  ++bufferedRecords_;
  ++nextSeq_;
  ++appended_;
  m.appends->inc();
  m.bytesWritten->inc(frameSize);

  // One write() per kFlushBytes keeps the syscall off the per-keystroke
  // path; the fsync boundary (checkpoint / sync() / syncEachAppend) is
  // what the durability guarantee rests on either way.
  if (buffer_.size() >= kFlushBytes || syncEachAppend_) {
    if (!flushLocked()) return;
  }
  if (syncEachAppend_) {
    if (!file_->sync()) {
      // The record reached the kernel but maybe not the device: count it
      // lost (lost is an upper bound) and poison the file.
      healthy_ = false;
      ++lost_;
      m.appendFailures->inc();
      m.recordsLost->inc();
      poisonLocked();
      return;
    }
    m.syncs->inc();
  }
}

bool WriteAheadLog::flushLocked() {
  if (buffer_.empty()) return true;
  const bool wrote = file_ != nullptr && file_->write(buffer_).ok;
  if (!wrote) {
    // The tracker mutations already happened; durability degrades, the
    // mutations do not roll back (availability over durability). The
    // buffered records are counted lost (an upper bound — a prefix may in
    // fact have reached the device) and the file is poisoned; sequences
    // stay monotonic so the repair checkpoint at the last assigned
    // sequence re-covers everything dropped here.
    healthy_ = false;
    lost_ += bufferedRecords_;
    walMetrics().appendFailures->inc(bufferedRecords_);
    walMetrics().recordsLost->inc(bufferedRecords_);
    poisonLocked();
  }
  buffer_.clear();
  bufferedRecords_ = 0;
  return wrote;
}

void WriteAheadLog::logSegmentObserved(const SegmentRecord& rec) {
  std::string body;
  body.reserve(75 + rec.name.size() + rec.document.size() +
               rec.service.size() + rec.fingerprint.grams().size() * 12);
  util::putU64(body, rec.id);
  util::putU8(body, static_cast<std::uint8_t>(rec.kind));
  util::putStr(body, rec.name);
  util::putStr(body, rec.document);
  util::putStr(body, rec.service);
  util::putF64(body, rec.threshold);
  util::putU64(body, rec.createdAt);
  util::putU64(body, rec.updatedAt);
  const auto& grams = rec.fingerprint.grams();
  util::putU64(body, grams.size());
  for (const auto& g : grams) {
    util::putU64(body, g.hash);
    util::putU32(body, g.pos);
  }
  append(WalRecordType::kSegmentObserved, body);
}

void WriteAheadLog::logAssociationAdded(SegmentKind kind, std::uint64_t hash,
                                        SegmentId segment,
                                        util::Timestamp firstSeen) {
  std::string body;
  util::putU8(body, static_cast<std::uint8_t>(kind));
  util::putU64(body, hash);
  util::putU64(body, segment);
  util::putU64(body, firstSeen);
  append(WalRecordType::kAssociationAdded, body);
}

void WriteAheadLog::logSegmentRemoved(SegmentId id) {
  std::string body;
  util::putU64(body, id);
  append(WalRecordType::kSegmentRemoved, body);
}

void WriteAheadLog::logThresholdChanged(std::string_view name,
                                        double threshold) {
  std::string body;
  util::putStr(body, name);
  util::putF64(body, threshold);
  append(WalRecordType::kThresholdChanged, body);
}

void WriteAheadLog::logAssociationsEvicted(util::Timestamp cutoff) {
  std::string body;
  util::putU64(body, cutoff);
  append(WalRecordType::kAssociationsEvicted, body);
}

util::Status WriteAheadLog::sync() {
  util::MutexLock lock(mutex_);
  if (file_ == nullptr) return util::Status::error("WAL not open");
  if (!flushLocked()) {
    return util::Status::error("WAL flush failed: " + path_);
  }
  if (!file_->sync()) {
    healthy_ = false;
    poisonLocked();
    return util::Status::error("WAL fsync failed: " + path_);
  }
  walMetrics().syncs->inc();
  return {};
}

bool WriteAheadLog::healthy() const {
  util::MutexLock lock(mutex_);
  return healthy_;
}

std::uint64_t WriteAheadLog::nextSequence() const {
  util::MutexLock lock(mutex_);
  return nextSeq_;
}

std::uint64_t WriteAheadLog::appendedRecords() const {
  util::MutexLock lock(mutex_);
  return appended_;
}

std::uint64_t WriteAheadLog::lostRecords() const {
  util::MutexLock lock(mutex_);
  return lost_;
}

WriteAheadLog::Stats WriteAheadLog::stats() const {
  util::MutexLock lock(mutex_);
  return {healthy_, nextSeq_, appended_, lost_};
}

void WriteAheadLog::failNextAppends(int n) {
  util::MutexLock lock(mutex_);
  failNext_ = n;
}

// ---- Replay -----------------------------------------------------------------

namespace {

/// True for a threshold a replayed record may carry — same bounds the
/// snapshot importer enforces (flow/snapshot.cpp).
bool validThreshold(double t) noexcept {
  return std::isfinite(t) && t >= 0.0 && t <= 1.0;
}

bool validKindByte(std::uint8_t k) noexcept {
  return k == static_cast<std::uint8_t>(SegmentKind::kParagraph) ||
         k == static_cast<std::uint8_t>(SegmentKind::kDocument);
}

/// Applies one validated record payload (past sequence + type) to the
/// tracker. Returns false when the body does not parse exactly or carries
/// out-of-range values — the frame is then treated as corrupt.
bool applyRecord(FlowTracker& tracker, WalRecordType type,
                 std::string_view body, util::Timestamp& maxTs) {
  util::BinaryReader r(body);
  switch (type) {
    case WalRecordType::kSegmentObserved: {
      SegmentRecord rec;
      rec.id = r.u64();
      const std::uint8_t kindByte = r.u8();
      if (!validKindByte(kindByte)) return false;
      rec.kind = static_cast<SegmentKind>(kindByte);
      rec.name = r.str();
      rec.document = r.str();
      rec.service = r.str();
      rec.threshold = r.f64();
      if (r.ok() && !validThreshold(rec.threshold)) return false;
      rec.createdAt = r.u64();
      rec.updatedAt = r.u64();
      const std::uint64_t gramCount = r.u64();
      std::vector<text::HashedGram> grams;
      grams.reserve(static_cast<std::size_t>(
          std::min<std::uint64_t>(gramCount, 1u << 20)));
      for (std::uint64_t g = 0; g < gramCount && r.ok(); ++g) {
        const std::uint64_t hash = r.u64();
        const std::uint32_t pos = r.u32();
        grams.push_back({hash, pos});
      }
      rec.fingerprint = text::Fingerprint::fromSelected(std::move(grams));
      if (!r.ok() || !r.atEnd()) return false;
      maxTs = std::max({maxTs, rec.createdAt, rec.updatedAt});
      tracker.replaySegmentObserved(std::move(rec));
      return true;
    }
    case WalRecordType::kAssociationAdded: {
      const std::uint8_t kindByte = r.u8();
      if (!validKindByte(kindByte)) return false;
      const std::uint64_t hash = r.u64();
      const SegmentId segment = r.u64();
      const util::Timestamp ts = r.u64();
      if (!r.ok() || !r.atEnd()) return false;
      maxTs = std::max(maxTs, ts);
      tracker.restoreAssociation(static_cast<SegmentKind>(kindByte), hash,
                                 segment, ts);
      return true;
    }
    case WalRecordType::kSegmentRemoved: {
      const SegmentId id = r.u64();
      if (!r.ok() || !r.atEnd()) return false;
      tracker.removeSegment(id);
      return true;
    }
    case WalRecordType::kThresholdChanged: {
      const std::string name = r.str();
      const double threshold = r.f64();
      if (!r.ok() || !r.atEnd()) return false;
      if (!validThreshold(threshold)) return false;
      (void)tracker.setSegmentThreshold(name, threshold);
      return true;
    }
    case WalRecordType::kAssociationsEvicted: {
      const util::Timestamp cutoff = r.u64();
      if (!r.ok() || !r.atEnd()) return false;
      (void)tracker.evictAssociationsOlderThan(cutoff);
      return true;
    }
  }
  return false;  // unknown type
}

}  // namespace

WalReplayResult replayWalFile(FlowTracker& tracker, const std::string& path,
                              std::uint64_t nextExpected, std::uint64_t cap,
                              io::Vfs* vfs) {
  WalReplayResult out;
  out.lastSequence = nextExpected == 0 ? 0 : nextExpected - 1;

  io::Vfs& v = vfs != nullptr ? *vfs : io::defaultVfs();
  util::Result<std::string> read = v.readFile(path);
  if (!read.ok()) {
    out.sawCorruption = true;
    return out;
  }
  const std::string data = std::move(read.value());

  if (data.size() < kWalHeaderBytes ||
      std::string_view(data).substr(0, kWalMagic.size()) != kWalMagic) {
    out.sawCorruption = true;
    out.discardedBytes = data.size();
    return out;
  }

  std::size_t pos = kWalHeaderBytes;
  std::uint64_t next = nextExpected;
  while (pos < data.size()) {
    // Frame header: u32 len + u32 masked CRC.
    if (data.size() - pos < 8) break;  // torn header
    util::BinaryReader hdr(std::string_view(data).substr(pos, 8));
    const std::uint32_t len = hdr.u32();
    const std::uint32_t storedCrc = hdr.u32();
    if (len < 9 || len > kMaxFrameBytes || data.size() - pos - 8 < len) {
      break;  // impossible length or torn payload
    }
    const std::string_view payload = std::string_view(data).substr(pos + 8, len);
    if (util::unmaskCrc32c(storedCrc) != util::crc32c(payload)) break;

    util::BinaryReader pr(payload);
    const std::uint64_t seq = pr.u64();
    const WalRecordType type = static_cast<WalRecordType>(pr.u8());
    if (seq >= next && seq > cap) {
      // Clean stop at the oracle cap: nothing here is corrupt, the caller
      // just does not want records past `cap`.
      pos += 8 + len;
      continue;
    }
    if (seq < next) {
      // Already covered by the checkpoint (or an earlier log).
      ++out.skipped;
      pos += 8 + len;
      continue;
    }
    if (seq != next) break;  // sequence gap: the prefix ends here
    if (!applyRecord(tracker, type, payload.substr(9), out.maxTimestamp)) {
      break;  // unparseable body counts as corruption
    }
    ++out.applied;
    out.lastSequence = seq;
    ++next;
    pos += 8 + len;
  }
  if (pos < data.size()) {
    out.sawCorruption = true;
    out.discardedBytes = data.size() - pos;
  }
  return out;
}

// ---- DurabilityManager ------------------------------------------------------

namespace {

/// Parses "<prefix><16 hex digits><suffix>" names; returns the sequence or
/// nullopt when the name does not match.
std::optional<std::uint64_t> parseSeqName(std::string_view name,
                                          std::string_view prefix,
                                          std::string_view suffix) {
  if (name.size() != prefix.size() + 16 + suffix.size()) return std::nullopt;
  if (name.substr(0, prefix.size()) != prefix) return std::nullopt;
  if (name.substr(prefix.size() + 16) != suffix) return std::nullopt;
  std::uint64_t seq = 0;
  for (char c : name.substr(prefix.size(), 16)) {
    seq <<= 4;
    if (c >= '0' && c <= '9') {
      seq |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      seq |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return std::nullopt;
    }
  }
  return seq;
}

std::string seqName(std::string_view prefix, std::uint64_t seq,
                    std::string_view suffix) {
  char hex[17];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(seq));
  std::string out(prefix);
  out += hex;
  out += suffix;
  return out;
}

/// Sequences of all files named <prefix><seq><suffix> in `dir`, sorted
/// ascending.
std::vector<std::uint64_t> listSeqFiles(io::Vfs& vfs, const std::string& dir,
                                        std::string_view prefix,
                                        std::string_view suffix) {
  std::vector<std::uint64_t> out;
  for (const std::string& name : vfs.listDir(dir)) {
    if (auto seq = parseSeqName(name, prefix, suffix)) {
      out.push_back(*seq);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

DurabilityManager::DurabilityManager(DurabilityConfig config)
    : config_(std::move(config)), repairRng_(config_.repairSeed) {
  util::RetryPolicy policy;
  policy.baseDelayMs = config_.repairBaseDelayMs;
  policy.maxDelayMs = config_.repairMaxDelayMs;
  policy.deadlineMs = 0.0;  // repair retries indefinitely; no deadline
  repairBackoff_ = util::Backoff(policy, &repairRng_);
}

DurabilityManager::~DurabilityManager() { wal_.close(); }

io::Vfs& DurabilityManager::vfs() const noexcept {
  return config_.vfs != nullptr ? *config_.vfs : io::defaultVfs();
}

std::string DurabilityManager::checkpointPath(std::uint64_t seq) const {
  return config_.directory + "/" + seqName("checkpoint-", seq, ".bfc");
}

std::string DurabilityManager::walPath(std::uint64_t seq) const {
  return config_.directory + "/" + seqName("wal-", seq, ".bfw");
}

void DurabilityManager::pruneGenerations(std::uint64_t currentSeq) {
  if (config_.keepGenerations == 0) return;  // keep everything
  const auto checkpoints =
      listSeqFiles(vfs(), config_.directory, "checkpoint-", ".bfc");
  // Keep the newest keepGenerations checkpoints; every WAL whose base
  // sequence is >= the oldest kept checkpoint is still needed to roll that
  // checkpoint forward (logs rotate AT checkpoints, so wal-<S> holds only
  // records with sequence > S).
  if (checkpoints.size() <= config_.keepGenerations) return;
  const std::uint64_t oldestKept =
      checkpoints[checkpoints.size() - config_.keepGenerations];
  for (std::uint64_t seq : checkpoints) {
    if (seq < oldestKept) (void)vfs().remove(checkpointPath(seq));
  }
  for (std::uint64_t seq :
       listSeqFiles(vfs(), config_.directory, "wal-", ".bfw")) {
    if (seq < oldestKept && seq != currentSeq) {
      (void)vfs().remove(walPath(seq));
    }
  }
}

std::uint64_t DurabilityManager::measureStorageBytes() {
  std::uint64_t total = 0;
  for (const std::string& name : vfs().listDir(config_.directory)) {
    total += vfs().fileSize(config_.directory + "/" + name);
  }
  walMetrics().storageBytes->set(static_cast<double>(total));
  return total;
}

void DurabilityManager::enforceStorageQuota(std::uint64_t currentSeq) {
  const std::uint64_t total = measureStorageBytes();
  if (config_.maxStorageBytes == 0 || total <= config_.maxStorageBytes) {
    return;
  }
  // Disk pressure: the quota outranks keepGenerations — only the newest
  // generation (checkpoint + its live log) survives. Losing fallback depth
  // is the right trade: an over-quota directory is how the NEXT checkpoint
  // starts failing with ENOSPC, which costs durability entirely.
  walMetrics().pressurePrunes->inc();
  const auto checkpoints =
      listSeqFiles(vfs(), config_.directory, "checkpoint-", ".bfc");
  if (checkpoints.empty()) return;
  const std::uint64_t newest = checkpoints.back();
  for (std::uint64_t seq : checkpoints) {
    if (seq < newest) (void)vfs().remove(checkpointPath(seq));
  }
  for (std::uint64_t seq :
       listSeqFiles(vfs(), config_.directory, "wal-", ".bfw")) {
    if (seq < newest && seq != currentSeq) {
      (void)vfs().remove(walPath(seq));
    }
  }
  (void)measureStorageBytes();
}

util::Result<RecoveryStats> DurabilityManager::recoverAndAttach(
    FlowTracker& tracker) {
  using R = util::Result<RecoveryStats>;
  util::Stopwatch watch;
  const WalMetrics& m = walMetrics();
  m.recoveryRuns->inc();

  (void)vfs().mkdir(config_.directory);

  RecoveryStats stats;

  // 1. Newest checkpoint that loads (import is all-or-nothing, so a failed
  //    attempt leaves the tracker empty for the next candidate).
  const auto checkpoints =
      listSeqFiles(vfs(), config_.directory, "checkpoint-", ".bfc");
  bool loaded = false;
  for (auto it = checkpoints.rbegin(); it != checkpoints.rend(); ++it) {
    auto info = loadSnapshotEx(tracker, checkpointPath(*it), config_.secret,
                               config_.vfs);
    if (info.ok()) {
      stats.checkpointSequence = info.value().sequence;
      stats.maxTimestamp = info.value().maxTimestamp;
      loaded = true;
      break;
    }
    stats.usedFallbackCheckpoint = true;
    m.recoveryFallbacks->inc();
  }
  if (!loaded) stats.checkpointSequence = 0;  // cold start / all corrupt

  // 2. Replay every log in base-sequence order. A log wal-<S> holds
  //    records S+1..; it can only extend the replay frontier when S+1 is
  //    at or below the next expected sequence — otherwise the records
  //    between the frontier and S are missing (torn tail of the previous
  //    log, or records lost while degraded) and everything in it is an
  //    unreachable suffix. Logs entirely below the checkpoint skip
  //    through via the in-file sequence checks.
  std::uint64_t next = stats.checkpointSequence + 1;
  for (std::uint64_t s :
       listSeqFiles(vfs(), config_.directory, "wal-", ".bfw")) {
    if (s + 1 > next) {
      stats.discardedBytes += vfs().fileSize(walPath(s));
      continue;
    }
    const WalReplayResult r = replayWalFile(tracker, walPath(s), next,
                                            ~std::uint64_t{0}, config_.vfs);
    stats.replayedRecords += r.applied;
    stats.discardedBytes += r.discardedBytes;
    stats.maxTimestamp = std::max(stats.maxTimestamp, r.maxTimestamp);
    if (r.applied > 0) next = r.lastSequence + 1;
  }
  stats.lastSequence = next - 1;
  m.recoveryReplayedRecords->inc(stats.replayedRecords);
  m.recoveryDiscardedBytes->inc(stats.discardedBytes);

  // 3. Make the recovered state durable NOW: fresh checkpoint at the
  //    recovered sequence, fresh log continuing from it. Old generations
  //    (including any corrupt files) are pruned per config.
  if (util::Status s =
          saveSnapshot(tracker, checkpointPath(stats.lastSequence),
                       config_.secret, stats.lastSequence, config_.vfs);
      !s.ok()) {
    m.checkpointFailures->inc();
    return R::error("post-recovery checkpoint failed: " + s.errorMessage());
  }
  m.checkpoints->inc();
  if (util::Status s =
          wal_.open(walPath(stats.lastSequence), stats.lastSequence,
                    config_.syncEachAppend, config_.vfs);
      !s.ok()) {
    return R::error(s.errorMessage());
  }
  pruneGenerations(stats.lastSequence);
  enforceStorageQuota(stats.lastSequence);
  tracker.attachWal(&wal_);
  attached_ = true;
  lastCheckpointOk_ = true;
  health_ = DurabilityHealth::kHealthy;
  repairAttempts_ = 0;
  m.health->set(0.0);

  stats.replayMillis = watch.elapsedMillis();
  m.recoveryLastReplayMs->set(stats.replayMillis);
  lastRecovery_ = stats;
  return stats;
}

util::Status DurabilityManager::checkpoint(const FlowTracker& tracker) {
  util::Stopwatch watch;
  const WalMetrics& m = walMetrics();
  // The caller quiesced mutations, so the last assigned sequence is stable
  // and the exported state contains exactly the records up to it — the
  // full in-memory state, including any records the WAL dropped, which is
  // what makes this checkpoint double as the degraded-mode repair.
  const std::uint64_t seq = wal_.nextSequence() - 1;
  if (util::Status s = saveSnapshot(tracker, checkpointPath(seq),
                                    config_.secret, seq, config_.vfs);
      !s.ok()) {
    m.checkpointFailures->inc();
    m.checkpointDurationUs->observe(watch.elapsedMicros());
    lastCheckpointOk_ = false;
    enterDegraded();
    return s;
  }
  m.checkpoints->inc();
  if (util::Status s = wal_.rotate(walPath(seq), seq); !s.ok()) {
    m.checkpointDurationUs->observe(watch.elapsedMicros());
    lastCheckpointOk_ = false;
    enterDegraded();
    return s;
  }
  pruneGenerations(seq);
  enforceStorageQuota(seq);
  lastCheckpointOk_ = true;
  // A successful checkpoint + rotation IS a durable prefix: whatever the
  // WAL lost before is now inside the snapshot, so health is restored.
  health_ = DurabilityHealth::kHealthy;
  repairAttempts_ = 0;
  m.health->set(0.0);
  m.checkpointLastMs->set(watch.elapsedMillis());
  m.checkpointDurationUs->observe(watch.elapsedMicros());
  return {};
}

bool DurabilityManager::checkpointDue() const {
  return attached_ &&
         wal_.appendedRecords() >= config_.checkpointEveryRecords;
}

util::Status DurabilityManager::checkpointIfDue(const FlowTracker& tracker) {
  if (!checkpointDue()) return {};
  return checkpoint(tracker);
}

void DurabilityManager::enterDegraded() {
  if (health_ == DurabilityHealth::kHealthy) {
    // New degraded episode: fresh backoff sequence.
    repairBackoff_.reset();
    repairAttempts_ = 0;
  }
  health_ = DurabilityHealth::kDegraded;
  nextRepairDelayMs_ = repairBackoff_.nextDelayMs();
  repairWatch_.reset();
  walMetrics().health->set(1.0);
}

util::Status DurabilityManager::attemptRepair(const FlowTracker& tracker) {
  health_ = DurabilityHealth::kRecovering;
  walMetrics().health->set(2.0);
  ++repairAttempts_;
  // Under disk pressure the repair itself needs room: shed old
  // generations before writing, not after.
  enforceStorageQuota(wal_.nextSequence() - 1);
  // The repair is an emergency checkpoint: snapshot the full in-memory
  // state at the last assigned sequence (covering every lost record) and
  // rotate onto a fresh segment. checkpoint() restores kHealthy on
  // success and re-enters kDegraded (advancing the backoff) on failure.
  util::Status s = checkpoint(tracker);
  if (s.ok()) {
    walMetrics().repairs->inc();
  } else {
    walMetrics().repairFailures->inc();
  }
  return s;
}

util::Status DurabilityManager::maintain(const FlowTracker& tracker) {
  if (!attached_) return {};
  if (health_ == DurabilityHealth::kHealthy) {
    // Fast path: one WAL lock acquisition to learn everything we need.
    const WriteAheadLog::Stats s = wal_.stats();
    if (!s.healthy || !lastCheckpointOk_) {
      enterDegraded();
      return {};
    }
    if (s.appended >= config_.checkpointEveryRecords) {
      return checkpoint(tracker);
    }
    return {};
  }
  // Degraded (or a previous repair still marked recovering): pace repair
  // attempts on the decorrelated-jitter backoff — a dying disk gets
  // breathing room, and the decision path pays one stopwatch read per
  // decision while waiting.
  if (repairWatch_.elapsedMillis() < nextRepairDelayMs_) return {};
  return attemptRepair(tracker);
}

bool DurabilityManager::healthy() const {
  return attached_ && health_ == DurabilityHealth::kHealthy &&
         lastCheckpointOk_ && wal_.healthy();
}

}  // namespace bf::flow
