#include "flow/snapshot.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "crypto/chacha20.h"
#include "util/binary_io.h"
#include "util/hashing.h"

namespace bf::flow {

namespace {

constexpr std::string_view kPlainMagic = "BFSNAPP1";
constexpr std::string_view kEncMagic = "BFSNAPE1";

crypto::Key256 deriveKey(std::string_view secret) {
  crypto::Key256 key{};
  std::uint64_t h = util::fnv1a64(secret);
  for (int i = 0; i < 4; ++i) {
    h = util::mix64(h + static_cast<std::uint64_t>(i) + 0xB0F1ULL);
    for (int b = 0; b < 8; ++b) {
      key[static_cast<std::size_t>(i * 8 + b)] =
          static_cast<std::uint8_t>(h >> (8 * b));
    }
  }
  return key;
}

}  // namespace

std::string exportState(const FlowTracker& tracker) {
  std::string out;
  out.append(kPlainMagic);

  // Segments, ordered by id for determinism.
  std::vector<const SegmentRecord*> segments;
  tracker.segmentDb().forEach(
      [&](const SegmentRecord& rec) { segments.push_back(&rec); });
  std::sort(segments.begin(), segments.end(),
            [](const SegmentRecord* a, const SegmentRecord* b) {
              return a->id < b->id;
            });
  util::putU64(out, segments.size());
  for (const SegmentRecord* rec : segments) {
    util::putU64(out, rec->id);
    util::putU8(out, static_cast<std::uint8_t>(rec->kind));
    util::putStr(out, rec->name);
    util::putStr(out, rec->document);
    util::putStr(out, rec->service);
    util::putF64(out, rec->threshold);
    util::putU64(out, rec->createdAt);
    util::putU64(out, rec->updatedAt);
    const auto& grams = rec->fingerprint.grams();
    util::putU64(out, grams.size());
    for (const auto& g : grams) {
      util::putU64(out, g.hash);
      util::putU32(out, g.pos);
    }
  }

  // Associations per granularity, sorted for determinism.
  for (SegmentKind kind :
       {SegmentKind::kParagraph, SegmentKind::kDocument}) {
    struct Assoc {
      std::uint64_t hash;
      SegmentId segment;
      util::Timestamp ts;
    };
    std::vector<Assoc> assocs;
    tracker.hashDb(kind).forEachAssociation(
        [&](std::uint64_t hash, SegmentId segment, util::Timestamp ts) {
          assocs.push_back({hash, segment, ts});
        });
    std::sort(assocs.begin(), assocs.end(), [](const Assoc& a, const Assoc& b) {
      if (a.hash != b.hash) return a.hash < b.hash;
      return a.ts < b.ts;
    });
    util::putU64(out, assocs.size());
    for (const auto& a : assocs) {
      util::putU64(out, a.hash);
      util::putU64(out, a.segment);
      util::putU64(out, a.ts);
    }
  }
  return out;
}

util::Result<util::Timestamp> importState(FlowTracker& tracker,
                                          std::string_view blob) {
  using R = util::Result<util::Timestamp>;
  if (tracker.segmentDb().size() != 0) {
    return R::error("importState requires an empty tracker");
  }
  if (blob.substr(0, kPlainMagic.size()) != kPlainMagic) {
    return R::error("not a BrowserFlow snapshot (bad magic)");
  }
  util::BinaryReader r(blob.substr(kPlainMagic.size()));
  util::Timestamp maxTs = 0;

  // Parse the ENTIRE blob into staging structures before touching the
  // tracker, so a truncated or corrupt snapshot leaves it empty (all or
  // nothing) instead of half-restored.
  std::vector<SegmentRecord> segments;
  const std::uint64_t segmentCount = r.u64();
  for (std::uint64_t i = 0; i < segmentCount && r.ok(); ++i) {
    SegmentRecord rec;
    rec.id = r.u64();
    rec.kind = static_cast<SegmentKind>(r.u8());
    rec.name = r.str();
    rec.document = r.str();
    rec.service = r.str();
    rec.threshold = r.f64();
    rec.createdAt = r.u64();
    rec.updatedAt = r.u64();
    maxTs = std::max({maxTs, rec.createdAt, rec.updatedAt});
    const std::uint64_t gramCount = r.u64();
    std::vector<text::HashedGram> grams;
    // Cap the reserve: a corrupt length prefix must not force a huge
    // allocation before the bounds-checked reads catch it.
    grams.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(gramCount, 1u << 20)));
    for (std::uint64_t g = 0; g < gramCount && r.ok(); ++g) {
      const std::uint64_t hash = r.u64();
      const std::uint32_t pos = r.u32();
      grams.push_back({hash, pos});
    }
    rec.fingerprint = text::Fingerprint::fromSelected(std::move(grams));
    if (!r.ok()) break;
    segments.push_back(std::move(rec));
  }

  struct Assoc {
    SegmentKind kind;
    std::uint64_t hash;
    SegmentId segment;
    util::Timestamp ts;
  };
  std::vector<Assoc> assocs;
  for (SegmentKind kind :
       {SegmentKind::kParagraph, SegmentKind::kDocument}) {
    const std::uint64_t count = r.u64();
    for (std::uint64_t i = 0; i < count && r.ok(); ++i) {
      const std::uint64_t hash = r.u64();
      const SegmentId segment = r.u64();
      const util::Timestamp ts = r.u64();
      maxTs = std::max(maxTs, ts);
      assocs.push_back({kind, hash, segment, ts});
    }
  }

  if (!r.ok() || !r.atEnd()) {
    return R::error("snapshot truncated or corrupt");
  }

  // Validated end to end — now apply.
  for (SegmentRecord& rec : segments) tracker.restoreSegment(std::move(rec));
  for (const Assoc& a : assocs) {
    tracker.restoreAssociation(a.kind, a.hash, a.segment, a.ts);
  }
  return maxTs;
}

util::Status saveSnapshot(const FlowTracker& tracker, const std::string& path,
                          std::string_view secret) {
  std::string blob = exportState(tracker);
  std::string fileData;
  if (secret.empty()) {
    fileData = std::move(blob);
  } else {
    fileData.append(kEncMagic);
    // Nonce derived from content + secret: snapshots are whole-file
    // rewrites, so nonce reuse would require identical (content, secret) —
    // which produces identical ciphertext, leaking nothing new.
    crypto::Nonce96 nonce{};
    const std::uint64_t n1 = util::fnv1a64(blob);
    const std::uint64_t n2 =
        util::mix64(n1 ^ util::fnv1a64(secret));
    for (int i = 0; i < 8; ++i) {
      nonce[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(n1 >> (8 * i));
    }
    for (int i = 0; i < 4; ++i) {
      nonce[static_cast<std::size_t>(8 + i)] =
          static_cast<std::uint8_t>(n2 >> (8 * i));
    }
    fileData.append(reinterpret_cast<const char*>(nonce.data()), nonce.size());
    fileData += crypto::chacha20Xor(blob, deriveKey(secret), nonce);
  }
  // Crash-safe write: the full snapshot goes to a sibling temp file which
  // is renamed over the target only after a clean close, so a crash or
  // disk-full mid-write can never leave a truncated snapshot at `path`
  // (rename within one directory is atomic on POSIX). The temp name is
  // unique per process and per call: concurrent saves to the same path
  // must never share a temp file, or interleaved writes could be renamed
  // over the target.
  static std::atomic<std::uint64_t> tmpCounter{0};
  const std::string tmpPath =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid())) + "." +
      std::to_string(tmpCounter.fetch_add(1, std::memory_order_relaxed));
  {
    std::ofstream out(tmpPath, std::ios::binary | std::ios::trunc);
    if (!out) return util::Status::error("cannot open for writing: " + tmpPath);
    out.write(fileData.data(), static_cast<std::streamsize>(fileData.size()));
    out.close();
    if (!out) {
      std::remove(tmpPath.c_str());
      return util::Status::error("write failed: " + tmpPath);
    }
  }
  if (std::rename(tmpPath.c_str(), path.c_str()) != 0) {
    std::remove(tmpPath.c_str());
    return util::Status::error("rename failed: " + tmpPath + " -> " + path);
  }
  return {};
}

util::Result<util::Timestamp> loadSnapshot(FlowTracker& tracker,
                                           const std::string& path,
                                           std::string_view secret) {
  using R = util::Result<util::Timestamp>;
  std::ifstream in(path, std::ios::binary);
  if (!in) return R::error("cannot open: " + path);
  std::string fileData((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());

  if (fileData.substr(0, kEncMagic.size()) == kEncMagic) {
    if (secret.empty()) return R::error("snapshot is encrypted; secret needed");
    const std::size_t header = kEncMagic.size();
    if (fileData.size() < header + 12) return R::error("snapshot truncated");
    crypto::Nonce96 nonce{};
    for (std::size_t i = 0; i < 12; ++i) {
      nonce[i] = static_cast<std::uint8_t>(fileData[header + i]);
    }
    const std::string blob = crypto::chacha20Xor(
        std::string_view(fileData).substr(header + 12), deriveKey(secret),
        nonce);
    return importState(tracker, blob);
  }
  return importState(tracker, fileData);
}

}  // namespace bf::flow
