#include "flow/snapshot.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <vector>

#include "crypto/chacha20.h"
#include "crypto/mac.h"
#include "util/binary_io.h"
#include "util/crc32c.h"
#include "util/hashing.h"

namespace bf::flow {

namespace {

constexpr std::string_view kPlainMagic = "BFSNAPP1";
constexpr std::string_view kEncMagic = "BFSNAPE1";
constexpr std::string_view kPlainMagicV2 = "BFSNAPP2";
constexpr std::string_view kEncMagicV2 = "BFSNAPE2";

crypto::Key256 deriveKey(std::string_view secret) {
  crypto::Key256 key{};
  std::uint64_t h = util::fnv1a64(secret);
  for (int i = 0; i < 4; ++i) {
    h = util::mix64(h + static_cast<std::uint64_t>(i) + 0xB0F1ULL);
    for (int b = 0; b < 8; ++b) {
      key[static_cast<std::size_t>(i * 8 + b)] =
          static_cast<std::uint8_t>(h >> (8 * b));
    }
  }
  return key;
}

/// Independent key for the integrity tag (encrypt-then-MAC wants distinct
/// cipher and MAC keys; the domain constant separates the derivations).
crypto::Key256 deriveMacKey(std::string_view secret) {
  crypto::Key256 key{};
  std::uint64_t h = util::mix64(util::fnv1a64(secret) ^ 0x4D414331ULL);  // "MAC1"
  for (int i = 0; i < 4; ++i) {
    h = util::mix64(h + static_cast<std::uint64_t>(i) + 0x7A61ULL);
    for (int b = 0; b < 8; ++b) {
      key[static_cast<std::size_t>(i * 8 + b)] =
          static_cast<std::uint8_t>(h >> (8 * b));
    }
  }
  return key;
}

/// Serialises the state body shared by the v1 and v2 formats (everything
/// after the magic / sequence header).
void appendStateBody(const FlowTracker& tracker, std::string& out) {
  // Segments, ordered by id for determinism.
  std::vector<const SegmentRecord*> segments;
  tracker.segmentDb().forEach(
      [&](const SegmentRecord& rec) { segments.push_back(&rec); });
  std::sort(segments.begin(), segments.end(),
            [](const SegmentRecord* a, const SegmentRecord* b) {
              return a->id < b->id;
            });
  util::putU64(out, segments.size());
  for (const SegmentRecord* rec : segments) {
    util::putU64(out, rec->id);
    util::putU8(out, static_cast<std::uint8_t>(rec->kind));
    util::putStr(out, rec->name);
    util::putStr(out, rec->document);
    util::putStr(out, rec->service);
    util::putF64(out, rec->threshold);
    util::putU64(out, rec->createdAt);
    util::putU64(out, rec->updatedAt);
    const auto& grams = rec->fingerprint.grams();
    util::putU64(out, grams.size());
    for (const auto& g : grams) {
      util::putU64(out, g.hash);
      util::putU32(out, g.pos);
    }
  }

  // Associations per granularity, sorted for determinism.
  for (SegmentKind kind :
       {SegmentKind::kParagraph, SegmentKind::kDocument}) {
    struct Assoc {
      std::uint64_t hash;
      SegmentId segment;
      util::Timestamp ts;
    };
    std::vector<Assoc> assocs;
    tracker.hashDb(kind).forEachAssociation(
        [&](std::uint64_t hash, SegmentId segment, util::Timestamp ts) {
          assocs.push_back({hash, segment, ts});
        });
    std::sort(assocs.begin(), assocs.end(), [](const Assoc& a, const Assoc& b) {
      if (a.hash != b.hash) return a.hash < b.hash;
      return a.ts < b.ts;
    });
    util::putU64(out, assocs.size());
    for (const auto& a : assocs) {
      util::putU64(out, a.hash);
      util::putU64(out, a.segment);
      util::putU64(out, a.ts);
    }
  }
}

/// Fully parsed, validated state waiting to be applied (all-or-nothing).
struct StagedState {
  struct Assoc {
    SegmentKind kind;
    std::uint64_t hash;
    SegmentId segment;
    util::Timestamp ts;
  };
  std::vector<SegmentRecord> segments;
  std::vector<Assoc> assocs;
  util::Timestamp maxTs = 0;
};

/// True for a threshold a live record may legally carry: D(A,B) scores are
/// ratios in [0, 1], so anything outside that range (or non-finite) is a
/// corrupt or hostile blob, not a configuration.
bool validThreshold(double t) noexcept {
  return std::isfinite(t) && t >= 0.0 && t <= 1.0;
}

bool validKindByte(std::uint8_t k) noexcept {
  return k == static_cast<std::uint8_t>(SegmentKind::kParagraph) ||
         k == static_cast<std::uint8_t>(SegmentKind::kDocument);
}

/// Parses the state body from `r` into `staged`. Returns an empty string on
/// success, an error message otherwise. Untrusted bytes are validated here,
/// BEFORE anything touches the tracker: enum bytes must name a known
/// SegmentKind and thresholds must be finite and in range — a corrupt blob
/// must never static_cast its way into live records.
std::string parseStateBody(util::BinaryReader& r, StagedState& staged) {
  const std::uint64_t segmentCount = r.u64();
  for (std::uint64_t i = 0; i < segmentCount && r.ok(); ++i) {
    SegmentRecord rec;
    rec.id = r.u64();
    const std::uint8_t kindByte = r.u8();
    if (r.ok() && !validKindByte(kindByte)) {
      return "unknown SegmentKind byte " + std::to_string(kindByte);
    }
    rec.kind = static_cast<SegmentKind>(kindByte);
    rec.name = r.str();
    rec.document = r.str();
    rec.service = r.str();
    rec.threshold = r.f64();
    if (r.ok() && !validThreshold(rec.threshold)) {
      return "threshold out of range for segment '" + rec.name + "'";
    }
    rec.createdAt = r.u64();
    rec.updatedAt = r.u64();
    staged.maxTs = std::max({staged.maxTs, rec.createdAt, rec.updatedAt});
    const std::uint64_t gramCount = r.u64();
    std::vector<text::HashedGram> grams;
    // Cap the reserve: a corrupt length prefix must not force a huge
    // allocation before the bounds-checked reads catch it.
    grams.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(gramCount, 1u << 20)));
    for (std::uint64_t g = 0; g < gramCount && r.ok(); ++g) {
      const std::uint64_t hash = r.u64();
      const std::uint32_t pos = r.u32();
      grams.push_back({hash, pos});
    }
    rec.fingerprint = text::Fingerprint::fromSelected(std::move(grams));
    if (!r.ok()) break;
    staged.segments.push_back(std::move(rec));
  }

  for (SegmentKind kind :
       {SegmentKind::kParagraph, SegmentKind::kDocument}) {
    const std::uint64_t count = r.u64();
    for (std::uint64_t i = 0; i < count && r.ok(); ++i) {
      const std::uint64_t hash = r.u64();
      const SegmentId segment = r.u64();
      const util::Timestamp ts = r.u64();
      staged.maxTs = std::max(staged.maxTs, ts);
      staged.assocs.push_back({kind, hash, segment, ts});
    }
  }

  if (!r.ok() || !r.atEnd()) return "snapshot truncated or corrupt";
  return {};
}

/// Crash-safe whole-file write: full content to a sibling temp file,
/// fsync, atomic rename over the target, then fsync the directory so the
/// rename itself is durable. A crash or disk-full mid-write can never
/// leave a truncated file at `path`, and EVERY failure path removes the
/// temp file — a save that fails (ENOSPC, short write, fsync error) leaves
/// no orphan and never clobbers the previous good snapshot, which only the
/// final rename replaces. The temp name is unique per process and per
/// call: concurrent saves to the same path must never share a temp file,
/// or interleaved writes could be renamed over the target.
util::Status atomicWriteFile(io::Vfs& vfs, const std::string& path,
                             std::string_view fileData) {
  static std::atomic<std::uint64_t> tmpCounter{0};
  const std::string tmpPath =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid())) + "." +
      std::to_string(tmpCounter.fetch_add(1, std::memory_order_relaxed));
  std::unique_ptr<io::File> file = vfs.openForWrite(tmpPath);
  if (file == nullptr) {
    return util::Status::error("cannot open for writing: " + tmpPath);
  }
  if (!file->write(fileData).ok) {
    (void)file->close();
    (void)vfs.remove(tmpPath);
    return util::Status::error("write failed: " + tmpPath);
  }
  if (!file->sync()) {
    (void)file->close();
    (void)vfs.remove(tmpPath);
    return util::Status::error("fsync failed: " + tmpPath);
  }
  if (!file->close()) {
    (void)vfs.remove(tmpPath);
    return util::Status::error("close failed: " + tmpPath);
  }
  if (!vfs.rename(tmpPath, path)) {
    (void)vfs.remove(tmpPath);
    return util::Status::error("rename failed: " + tmpPath + " -> " + path);
  }
  // Durable rename: fsync the containing directory (best effort — some
  // filesystems reject O_RDONLY directory fsync; the rename is still
  // atomic, just not yet journalled).
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  vfs.syncDir(dir);
  return {};
}

}  // namespace

std::string exportState(const FlowTracker& tracker) {
  std::string out;
  out.append(kPlainMagic);
  appendStateBody(tracker, out);
  return out;
}

std::string exportStateV2(const FlowTracker& tracker, std::uint64_t sequence) {
  std::string out;
  out.append(kPlainMagicV2);
  util::putU64(out, sequence);
  appendStateBody(tracker, out);
  util::putU32(out, util::maskCrc32c(util::crc32c(out)));
  return out;
}

util::Result<SnapshotInfo> importStateEx(FlowTracker& tracker,
                                         std::string_view blob) {
  using R = util::Result<SnapshotInfo>;
  if (tracker.segmentDb().size() != 0) {
    return R::error("importState requires an empty tracker");
  }

  SnapshotInfo info;
  std::string_view body;
  if (blob.substr(0, kPlainMagicV2.size()) == kPlainMagicV2) {
    // v2: magic + u64 sequence + body + u32 masked CRC trailer.
    constexpr std::size_t kHeader = 8 + 8;
    if (blob.size() < kHeader + 4) return R::error("snapshot truncated");
    const std::string_view trailer = blob.substr(blob.size() - 4);
    std::uint32_t stored = 0;
    for (int i = 0; i < 4; ++i) {
      stored |= static_cast<std::uint32_t>(
                    static_cast<unsigned char>(trailer[static_cast<std::size_t>(i)]))
                << (8 * i);
    }
    const std::uint32_t actual =
        util::crc32c(blob.substr(0, blob.size() - 4));
    if (util::unmaskCrc32c(stored) != actual) {
      return R::error("snapshot CRC mismatch");
    }
    util::BinaryReader seqReader(blob.substr(kPlainMagicV2.size(), 8));
    info.sequence = seqReader.u64();
    body = blob.substr(kHeader, blob.size() - kHeader - 4);
  } else if (blob.substr(0, kPlainMagic.size()) == kPlainMagic) {
    // v1: magic + body, no trailer, sequence 0.
    body = blob.substr(kPlainMagic.size());
  } else {
    return R::error("not a BrowserFlow snapshot (bad magic)");
  }

  // Parse the ENTIRE body into staging structures before touching the
  // tracker, so a truncated or corrupt snapshot leaves it empty (all or
  // nothing) instead of half-restored.
  util::BinaryReader r(body);
  StagedState staged;
  if (std::string err = parseStateBody(r, staged); !err.empty()) {
    return R::error(err);
  }
  info.maxTimestamp = staged.maxTs;

  // Validated end to end — now apply.
  for (SegmentRecord& rec : staged.segments) {
    tracker.restoreSegment(std::move(rec));
  }
  for (const StagedState::Assoc& a : staged.assocs) {
    tracker.restoreAssociation(a.kind, a.hash, a.segment, a.ts);
  }
  return info;
}

util::Result<util::Timestamp> importState(FlowTracker& tracker,
                                          std::string_view blob) {
  using R = util::Result<util::Timestamp>;
  auto result = importStateEx(tracker, blob);
  if (!result.ok()) return R::error(result.errorMessage());
  return result.value().maxTimestamp;
}

util::Status saveSnapshot(const FlowTracker& tracker, const std::string& path,
                          std::string_view secret, std::uint64_t sequence,
                          io::Vfs* vfs) {
  std::string blob = exportStateV2(tracker, sequence);
  std::string fileData;
  if (secret.empty()) {
    fileData = std::move(blob);
  } else {
    fileData.append(kEncMagicV2);
    // Nonce derived from content + secret: snapshots are whole-file
    // rewrites, so nonce reuse would require identical (content, secret) —
    // which produces identical ciphertext, leaking nothing new.
    crypto::Nonce96 nonce{};
    const std::uint64_t n1 = util::fnv1a64(blob);
    const std::uint64_t n2 =
        util::mix64(n1 ^ util::fnv1a64(secret));
    for (int i = 0; i < 8; ++i) {
      nonce[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(n1 >> (8 * i));
    }
    for (int i = 0; i < 4; ++i) {
      nonce[static_cast<std::size_t>(8 + i)] =
          static_cast<std::uint8_t>(n2 >> (8 * i));
    }
    fileData.append(reinterpret_cast<const char*>(nonce.data()), nonce.size());
    fileData += crypto::chacha20Xor(blob, deriveKey(secret), nonce);
    // Encrypt-then-MAC: the tag covers magic, nonce and ciphertext, so any
    // bit flip anywhere in the envelope fails verification BEFORE the
    // malleable stream cipher could smuggle altered plaintext to the
    // parser.
    const crypto::Tag128 tag = crypto::keyedTag(deriveMacKey(secret), fileData);
    fileData.append(reinterpret_cast<const char*>(tag.data()), tag.size());
  }
  return atomicWriteFile(vfs != nullptr ? *vfs : io::defaultVfs(), path,
                         fileData);
}

util::Result<SnapshotInfo> loadSnapshotEx(FlowTracker& tracker,
                                          const std::string& path,
                                          std::string_view secret,
                                          io::Vfs* vfs) {
  using R = util::Result<SnapshotInfo>;
  util::Result<std::string> read =
      (vfs != nullptr ? *vfs : io::defaultVfs()).readFile(path);
  if (!read.ok()) return R::error("cannot open: " + path);
  const std::string fileData = std::move(read.value());

  if (fileData.substr(0, kEncMagicV2.size()) == kEncMagicV2) {
    if (secret.empty()) return R::error("snapshot is encrypted; secret needed");
    const std::size_t header = kEncMagicV2.size();
    if (fileData.size() < header + 12 + sizeof(crypto::Tag128)) {
      return R::error("snapshot truncated");
    }
    // Authenticate the whole envelope before decrypting anything.
    const std::size_t tagOffset = fileData.size() - sizeof(crypto::Tag128);
    crypto::Tag128 stored{};
    std::memcpy(stored.data(), fileData.data() + tagOffset, stored.size());
    const crypto::Tag128 actual = crypto::keyedTag(
        deriveMacKey(secret),
        std::string_view(fileData).substr(0, tagOffset));
    if (!crypto::tagEquals(stored, actual)) {
      return R::error("snapshot authentication failed (corrupt or wrong key)");
    }
    crypto::Nonce96 nonce{};
    for (std::size_t i = 0; i < 12; ++i) {
      nonce[i] = static_cast<std::uint8_t>(fileData[header + i]);
    }
    const std::string blob = crypto::chacha20Xor(
        std::string_view(fileData).substr(header + 12,
                                          tagOffset - header - 12),
        deriveKey(secret), nonce);
    return importStateEx(tracker, blob);
  }

  if (fileData.substr(0, kEncMagic.size()) == kEncMagic) {
    // Legacy v1 encrypted snapshot: unauthenticated (migration path only).
    if (secret.empty()) return R::error("snapshot is encrypted; secret needed");
    const std::size_t header = kEncMagic.size();
    if (fileData.size() < header + 12) return R::error("snapshot truncated");
    crypto::Nonce96 nonce{};
    for (std::size_t i = 0; i < 12; ++i) {
      nonce[i] = static_cast<std::uint8_t>(fileData[header + i]);
    }
    const std::string blob = crypto::chacha20Xor(
        std::string_view(fileData).substr(header + 12), deriveKey(secret),
        nonce);
    return importStateEx(tracker, blob);
  }

  return importStateEx(tracker, fileData);
}

util::Result<util::Timestamp> loadSnapshot(FlowTracker& tracker,
                                           const std::string& path,
                                           std::string_view secret) {
  using R = util::Result<util::Timestamp>;
  auto result = loadSnapshotEx(tracker, path, secret);
  if (!result.ok()) return R::error(result.errorMessage());
  return result.value().maxTimestamp;
}

}  // namespace bf::flow
