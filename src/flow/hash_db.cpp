#include "flow/hash_db.h"

#include <algorithm>

#include "util/hashing.h"

namespace bf::flow {

namespace {
constexpr std::size_t kInitialSlots = 16;  // power of two
}  // namespace

std::size_t HashDb::probe(std::uint64_t hash) const noexcept {
  // Stored hashes are often truncated to 32 bits; re-mix so high slots of
  // large tables stay uniformly used under linear probing.
  std::size_t idx = static_cast<std::size_t>(util::mix64(hash)) & mask_;
  while (slots_[idx].used && slots_[idx].hash != hash) {
    idx = (idx + 1) & mask_;
  }
  return idx;
}

void HashDb::reserveForInsert() {
  if (slots_.empty()) {
    slots_.resize(kInitialSlots);
    mask_ = kInitialSlots - 1;
    return;
  }
  // Grow at ~70% load. Rehashing moves only the flat Slot structs; the
  // overflow pool is index-stable and untouched.
  if ((occupied_ + 1) * 10 < slots_.size() * 7) return;
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot{});
  mask_ = slots_.size() - 1;
  for (const Slot& s : old) {
    if (s.used) slots_[probe(s.hash)] = s;
  }
}

void HashDb::recordObservation(std::uint64_t hash, SegmentId segment,
                               util::Timestamp ts) {
  reserveForInsert();
  Slot& s = slots_[probe(hash)];
  if (!s.used) {
    s.used = true;
    s.hash = hash;
    s.first = Association{segment, ts};
    s.overflow = kNoOverflow;
    ++occupied_;
    ++storedAssociations_;
    return;
  }
  // Idempotent per (hash, segment): keep the original first-seen timestamp.
  if (s.first.segment == segment) return;
  if (s.overflow != kNoOverflow) {
    for (const Association& a : overflow_[s.overflow]) {
      if (a.segment == segment) return;
    }
  }

  if (s.overflow == kNoOverflow) {
    if (!overflowFree_.empty()) {
      s.overflow = overflowFree_.back();
      overflowFree_.pop_back();
      overflow_[s.overflow].clear();
    } else {
      s.overflow = static_cast<std::uint32_t>(overflow_.size());
      overflow_.emplace_back();
    }
  }
  std::vector<Association>& rest = overflow_[s.overflow];
  Association assoc{segment, ts};
  if (ts < s.first.firstSeen) {
    // New oldest: it takes the inline seat; the previous oldest re-enters
    // the history at the front (it precedes everything in the overflow).
    std::swap(assoc, s.first);
    rest.insert(rest.begin(), assoc);
  } else {
    // Timestamps come from a monotonic clock, so appends keep the history
    // sorted; guard anyway against out-of-order callers.
    if (!rest.empty() && rest.back().firstSeen > ts) {
      auto it = std::upper_bound(rest.begin(), rest.end(), ts,
                                 [](util::Timestamp t, const Association& a) {
                                   return t < a.firstSeen;
                                 });
      rest.insert(it, assoc);
    } else {
      rest.push_back(assoc);
    }
  }
  ++storedAssociations_;
}

std::optional<SegmentId> HashDb::oldestSegmentWith(std::uint64_t hash) const {
  if (slots_.empty()) return std::nullopt;
  const Slot& s = slots_[probe(hash)];
  if (!s.used) return std::nullopt;
  // The inline association IS the oldest owner — the common single-owner
  // case answers from this one slot.
  if (!isDead(s.first.segment)) return s.first.segment;
  if (s.overflow != kNoOverflow) {
    for (const Association& a : overflow_[s.overflow]) {
      if (!isDead(a.segment)) return a.segment;
    }
  }
  return std::nullopt;
}

std::vector<SegmentId> HashDb::segmentsWith(std::uint64_t hash) const {
  std::vector<SegmentId> out;
  if (slots_.empty()) return out;
  const Slot& s = slots_[probe(hash)];
  if (!s.used) return out;
  if (!isDead(s.first.segment)) out.push_back(s.first.segment);
  if (s.overflow != kNoOverflow) {
    const std::vector<Association>& rest = overflow_[s.overflow];
    out.reserve(out.size() + rest.size());
    for (const Association& a : rest) {
      if (!isDead(a.segment)) out.push_back(a.segment);
    }
  }
  return out;
}

std::optional<util::Timestamp> HashDb::firstSeen(std::uint64_t hash,
                                                 SegmentId segment) const {
  if (slots_.empty() || isDead(segment)) return std::nullopt;
  const Slot& s = slots_[probe(hash)];
  if (!s.used) return std::nullopt;
  if (s.first.segment == segment) return s.first.firstSeen;
  if (s.overflow != kNoOverflow) {
    for (const Association& a : overflow_[s.overflow]) {
      if (a.segment == segment) return a.firstSeen;
    }
  }
  return std::nullopt;
}

template <typename Keep>
std::size_t HashDb::rebuildFiltered(Keep&& keep) {
  std::vector<Slot> oldSlots = std::move(slots_);
  std::vector<std::vector<Association>> oldOverflow = std::move(overflow_);
  const std::size_t before = storedAssociations_;
  slots_.clear();
  overflow_.clear();
  overflowFree_.clear();
  mask_ = 0;
  occupied_ = 0;
  storedAssociations_ = 0;

  std::vector<Association> hist;
  for (const Slot& s : oldSlots) {
    if (!s.used) continue;
    hist.clear();
    if (keep(s.first)) hist.push_back(s.first);
    if (s.overflow != kNoOverflow) {
      for (const Association& a : oldOverflow[s.overflow]) {
        if (keep(a)) hist.push_back(a);
      }
    }
    if (hist.empty()) continue;
    reserveForInsert();
    Slot& dst = slots_[probe(s.hash)];
    dst.used = true;
    dst.hash = s.hash;
    dst.first = hist.front();
    dst.overflow = kNoOverflow;
    if (hist.size() > 1) {
      dst.overflow = static_cast<std::uint32_t>(overflow_.size());
      overflow_.emplace_back(hist.begin() + 1, hist.end());
    }
    ++occupied_;
    storedAssociations_ += hist.size();
  }
  return before - storedAssociations_;
}

void HashDb::removeSegment(SegmentId segment) {
  dead_.insert(segment);
  ++removalGeneration_;
  if (dead_.size() > deadCompactionThreshold_) compactDead();
}

std::size_t HashDb::compactDead() {
  if (dead_.empty()) return 0;
  const std::size_t dropped =
      rebuildFiltered([this](const Association& a) { return !isDead(a.segment); });
  dead_.clear();
  return dropped;
}

std::size_t HashDb::evictOlderThan(util::Timestamp cutoff) {
  const std::size_t dropped = rebuildFiltered([&](const Association& a) {
    return a.firstSeen >= cutoff && !isDead(a.segment);
  });
  dead_.clear();  // every dead association was just physically purged
  ++removalGeneration_;
  return dropped;
}

}  // namespace bf::flow
