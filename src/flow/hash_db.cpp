#include "flow/hash_db.h"

#include <algorithm>

namespace bf::flow {

void HashDb::recordObservation(std::uint64_t hash, SegmentId segment,
                               util::Timestamp ts) {
  Entry& e = table_[hash];
  for (const Association& a : e.history) {
    if (a.segment == segment) return;  // keep original first-seen timestamp
  }
  // Timestamps come from a monotonic clock, so appends keep the history
  // sorted; guard anyway against out-of-order callers.
  Association assoc{segment, ts};
  if (!e.history.empty() && e.history.back().firstSeen > ts) {
    auto it = std::upper_bound(
        e.history.begin(), e.history.end(), ts,
        [](util::Timestamp t, const Association& a) { return t < a.firstSeen; });
    e.history.insert(it, assoc);
  } else {
    e.history.push_back(assoc);
  }
  ++liveAssociations_;
}

std::optional<SegmentId> HashDb::oldestSegmentWith(std::uint64_t hash) const {
  auto it = table_.find(hash);
  if (it == table_.end()) return std::nullopt;
  for (const Association& a : it->second.history) {
    if (!isDead(a.segment)) return a.segment;
  }
  return std::nullopt;
}

std::vector<SegmentId> HashDb::segmentsWith(std::uint64_t hash) const {
  std::vector<SegmentId> out;
  auto it = table_.find(hash);
  if (it == table_.end()) return out;
  out.reserve(it->second.history.size());
  for (const Association& a : it->second.history) {
    if (!isDead(a.segment)) out.push_back(a.segment);
  }
  return out;
}

std::optional<util::Timestamp> HashDb::firstSeen(std::uint64_t hash,
                                                 SegmentId segment) const {
  auto it = table_.find(hash);
  if (it == table_.end()) return std::nullopt;
  for (const Association& a : it->second.history) {
    if (a.segment == segment && !isDead(segment)) return a.firstSeen;
  }
  return std::nullopt;
}

void HashDb::removeSegment(SegmentId segment) {
  dead_.emplace(segment, 0);
  ++removalGeneration_;
}

std::size_t HashDb::evictOlderThan(util::Timestamp cutoff) {
  std::size_t dropped = 0;
  for (auto it = table_.begin(); it != table_.end();) {
    auto& hist = it->second.history;
    const std::size_t before = hist.size();
    hist.erase(std::remove_if(hist.begin(), hist.end(),
                              [&](const Association& a) {
                                return a.firstSeen < cutoff || isDead(a.segment);
                              }),
               hist.end());
    dropped += before - hist.size();
    if (hist.empty()) {
      it = table_.erase(it);
    } else {
      ++it;
    }
  }
  if (liveAssociations_ >= dropped) {
    liveAssociations_ -= dropped;
  } else {
    liveAssociations_ = 0;
  }
  ++removalGeneration_;
  return dropped;
}

}  // namespace bf::flow
