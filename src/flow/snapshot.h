// Snapshot: persistence for the fingerprint stores.
//
// The paper recommends protecting the long-lived fingerprint database:
// "Storing fingerprints long-term ... can introduce an additional attack
//  target if a device gets compromised. To mitigate this we recommend
//  encrypting all fingerprint data at rest and performing periodic removal
//  of old fingerprints." (S4.4)
//
// exportState()/importState() serialise the tracker's segments (with their
// fingerprints, thresholds and metadata) and all hash associations (with
// first-seen timestamps, preserving authority ordering) into a portable
// little-endian binary blob. saveSnapshot()/loadSnapshot() add the at-rest
// encryption layer and file I/O.
//
// Formats (DESIGN.md §11):
//  - v1 plain "BFSNAPP1": magic + body. No integrity check beyond the
//    bounds-checked parse. Still readable; no longer written.
//  - v2 plain "BFSNAPP2": magic + u64 checkpoint sequence + body + trailing
//    masked CRC32C over everything before the trailer. The sequence links
//    a checkpoint to the write-ahead log that continues it (flow/wal.h).
//  - v1 encrypted "BFSNAPE1": magic + nonce + ChaCha20(blob). Readable for
//    migration; unauthenticated, so a flipped ciphertext bit could import
//    as wrong hashes — which is why it is no longer written.
//  - v2 encrypted "BFSNAPE2": magic + nonce + ChaCha20(v2 plain blob) +
//    16-byte keyed tag over magic||nonce||ciphertext (crypto/mac.h),
//    verified BEFORE decryption (encrypt-then-MAC).
//
// Every import validates untrusted bytes before they become live records:
// unknown SegmentKind values and non-finite / out-of-range thresholds
// reject the whole blob (all-or-nothing, tracker left empty).
#pragma once

#include <cstdint>
#include <string>

#include "flow/tracker.h"
#include "io/vfs.h"
#include "util/result.h"

namespace bf::flow {

/// What a successfully imported snapshot contained.
struct SnapshotInfo {
  /// Largest timestamp in the snapshot: the caller must advance the
  /// tracker's clock past it so new observations sort after restored ones
  /// (LogicalClock::advanceTo).
  util::Timestamp maxTimestamp = 0;
  /// Checkpoint sequence number recorded at save time (0 for v1 blobs and
  /// plain saves outside the durability manager). WAL records with
  /// sequence > this continue the state (flow/wal.h).
  std::uint64_t sequence = 0;
};

/// Serialises the tracker's full state as a v1 plain blob (legacy format,
/// kept for deployment bundles and as the deterministic canonical form:
/// equal states produce equal blobs — segments ordered by id, associations
/// by hash within kind).
[[nodiscard]] std::string exportState(const FlowTracker& tracker);

/// Serialises as a v2 plain blob: checkpoint `sequence` + body + CRC32C
/// trailer. Deterministic like exportState().
[[nodiscard]] std::string exportStateV2(const FlowTracker& tracker,
                                        std::uint64_t sequence);

/// Restores state exported by exportState()/exportStateV2() into `tracker`,
/// which must be EMPTY (freshly constructed). Accepts v1 and v2 blobs; v2
/// blobs are rejected on CRC mismatch.
[[nodiscard]] util::Result<SnapshotInfo> importStateEx(FlowTracker& tracker,
                                                       std::string_view blob);

/// importStateEx() returning only the timestamp (compatibility shim).
[[nodiscard]] util::Result<util::Timestamp> importState(FlowTracker& tracker,
                                                        std::string_view blob);

/// Writes the tracker state to `path` in v2 format, encrypted with a key
/// derived from `secret` (empty secret = plaintext snapshot). Crash-safe:
/// full temp-file write + fsync + atomic rename — on ANY failure the temp
/// file is removed and the previous snapshot at `path` is untouched.
/// `sequence` is the checkpoint sequence stored in the blob (0 outside the
/// durability manager). `vfs` routes the file I/O (null = defaultVfs()).
[[nodiscard]] util::Status saveSnapshot(const FlowTracker& tracker,
                                        const std::string& path,
                                        std::string_view secret,
                                        std::uint64_t sequence = 0,
                                        io::Vfs* vfs = nullptr);

/// Loads a snapshot written by saveSnapshot() — any format version — into
/// an empty tracker. Encrypted v2 files are authenticated before parsing:
/// a bit-flipped blob fails the tag check and is rejected. `vfs` routes
/// the read (null = defaultVfs()).
[[nodiscard]] util::Result<SnapshotInfo> loadSnapshotEx(
    FlowTracker& tracker, const std::string& path, std::string_view secret,
    io::Vfs* vfs = nullptr);

/// loadSnapshotEx() returning only the timestamp (compatibility shim).
[[nodiscard]] util::Result<util::Timestamp> loadSnapshot(
    FlowTracker& tracker, const std::string& path, std::string_view secret);

}  // namespace bf::flow
