// Snapshot: persistence for the fingerprint stores.
//
// The paper recommends protecting the long-lived fingerprint database:
// "Storing fingerprints long-term ... can introduce an additional attack
//  target if a device gets compromised. To mitigate this we recommend
//  encrypting all fingerprint data at rest and performing periodic removal
//  of old fingerprints." (S4.4)
//
// exportState()/importState() serialise the tracker's segments (with their
// fingerprints, thresholds and metadata) and all hash associations (with
// first-seen timestamps, preserving authority ordering) into a portable
// little-endian binary blob. saveSnapshot()/loadSnapshot() add the at-rest
// ChaCha20 encryption layer and file I/O.
#pragma once

#include <string>

#include "flow/tracker.h"
#include "util/result.h"

namespace bf::flow {

/// Serialises the tracker's full state. Deterministic ordering (segments by
/// id, associations by hash within kind), so equal states produce equal
/// blobs.
[[nodiscard]] std::string exportState(const FlowTracker& tracker);

/// Restores state exported by exportState() into `tracker`, which must be
/// EMPTY (freshly constructed). Returns the largest timestamp contained in
/// the snapshot: the caller must advance the tracker's clock past it so
/// that new observations sort after restored ones (LogicalClock::advanceTo).
[[nodiscard]] util::Result<util::Timestamp> importState(FlowTracker& tracker,
                                                        std::string_view blob);

/// Writes the tracker state to `path`, encrypted with a key derived from
/// `secret` (empty secret = plaintext snapshot).
[[nodiscard]] util::Status saveSnapshot(const FlowTracker& tracker,
                                        const std::string& path,
                                        std::string_view secret);

/// Loads a snapshot written by saveSnapshot() into an empty tracker.
/// Returns the largest restored timestamp (see importState).
[[nodiscard]] util::Result<util::Timestamp> loadSnapshot(
    FlowTracker& tracker, const std::string& path, std::string_view secret);

}  // namespace bf::flow
