// bfscan: an offline scanner for incident response and audits.
//
// Given a saved deployment (fingerprints + policy) and a text, reports
// which tracked sources the text discloses, with scores, labels and the
// implicated source passages — the investigative counterpart of the
// in-browser advisory flow.
//
// Usage:
//   bfscan <deployment-file> <org-secret> <text-file> [service-id]
//   bfscan --demo            # self-contained demonstration
//
// Exit code: 0 = no disclosure, 2 = disclosure found, 1 = usage/errors.

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/deployment.h"
#include "corpus/text_generator.h"
#include "text/segmenter.h"

namespace {

using namespace bf;

int scanText(core::BrowserFlowPlugin& plugin, const std::string& text,
             const std::string& serviceId) {
  bool anyDisclosure = false;
  const auto paragraphs = text::segmentParagraphs(text);
  std::printf("scanning %zu paragraph(s)%s\n", paragraphs.size(),
              serviceId.empty()
                  ? ""
                  : (" for upload to " + serviceId).c_str());

  for (const auto& para : paragraphs) {
    const auto hits = plugin.tracker().checkText(para.text, "bfscan-input");
    if (hits.empty()) continue;
    anyDisclosure = true;
    std::printf("\nparagraph %zu discloses:\n", para.index);
    for (const auto& hit : hits) {
      std::printf("  %-40s D=%.2f (threshold %.2f) service=%s\n",
                  hit.sourceName.c_str(), hit.score, hit.threshold,
                  hit.sourceService.c_str());
      const tdm::Label* label = plugin.policy().labelOf(hit.sourceName);
      if (label != nullptr) {
        std::printf("    label: %s\n", label->toString().c_str());
      }
      const auto ranges = plugin.tracker().attributeDisclosure(
          hit.source, plugin.tracker().fingerprintOf(para.text));
      for (const auto& [b, e] : ranges) {
        std::printf("    source bytes [%zu, %zu)\n", b, e);
      }
    }
  }

  // Exact-match secrets.
  for (const auto& hit : plugin.secretGuard().scan(text)) {
    anyDisclosure = true;
    std::printf("\ncontains registered secret: %s (tag %s)\n",
                hit.name.c_str(), hit.tag.c_str());
  }

  if (!serviceId.empty()) {
    const core::Decision d =
        plugin.decideUploadText(text, "bfscan-input", serviceId);
    std::printf("\nupload to %s: %s\n", serviceId.c_str(),
                d.violation() ? "VIOLATION" : "allowed");
    for (const auto& tag : d.violatingTags) {
      std::printf("  violating tag: %s\n", tag.c_str());
    }
  }

  std::printf("\nresult: %s\n",
              anyDisclosure ? "DISCLOSURE FOUND" : "clean");
  return anyDisclosure ? 2 : 0;
}

int runDemo() {
  std::printf("--- bfscan demo (no deployment file given) ---\n");
  util::LogicalClock clock;
  core::BrowserFlowPlugin plugin(core::BrowserFlowConfig{}, &clock);
  plugin.policy().services().upsert({"hr", "HR Tool", tdm::TagSet{"hr"},
                                     tdm::TagSet{"hr"}});
  util::Rng rng(1);
  corpus::TextGenerator gen(&rng);
  const std::string sensitive = gen.paragraph(7, 9);
  plugin.observeServiceDocument("hr", "hr/salaries", sensitive);
  plugin.secretGuard().addSecret("vpn-password", "correct horse battery",
                                 "vpn");

  const std::string input = gen.paragraph(5, 7) + "\n\n" + sensitive +
                            "\n\nremember the vpn uses CorrectHorseBattery.";
  const int rc = scanText(plugin, input, "https://pastebin.example");
  return rc == 2 ? 0 : 1;  // demo expects to find the planted disclosure
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::string(argv[1]) == "--demo") return runDemo();
  if (argc == 1) return runDemo();
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: bfscan <deployment-file> <org-secret> <text-file> "
                 "[service-id]\n       bfscan --demo\n");
    return 1;
  }

  util::LogicalClock clock;
  core::BrowserFlowPlugin plugin(core::BrowserFlowConfig{}, &clock);
  const auto restored = core::loadDeployment(plugin, argv[1], argv[2]);
  if (!restored.ok()) {
    std::fprintf(stderr, "cannot load deployment: %s\n",
                 restored.errorMessage().c_str());
    return 1;
  }
  clock.advanceTo(restored.value() + 1);

  std::ifstream in(argv[3]);
  if (!in) {
    std::fprintf(stderr, "cannot open text file: %s\n", argv[3]);
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return scanText(plugin, buffer.str(), argc > 4 ? argv[4] : "");
}
