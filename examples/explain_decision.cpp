// Explain a decision end to end: drive the engine through an allowed edit,
// a blocked paste, and a breaker-degraded decision, then dump the flight
// recorder as bf-flight-v1 JSON for scripts/bf_explain.py.
//
// Run: ./build/examples/explain_decision | scripts/bf_explain.py -
//
// Diagnostic prose goes to stderr so stdout stays pipeable JSON. The
// README's "Explaining a decision" section walks through the output.

#include <cstdio>
#include <string>

#include "core/decision_engine.h"
#include "flow/tracker.h"
#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/trace_context.h"
#include "tdm/policy.h"
#include "util/clock.h"

int main() {
  using namespace bf;

  // Sample every trace so this demo retains all three decisions; the
  // production default keeps 1-in-16 plus everything blocked or degraded.
  obs::setTraceSampleEvery(1);
  obs::FlightRecorder::instance().clear();

  util::LogicalClock clock;
  flow::FlowTracker tracker(flow::TrackerConfig{}, &clock);
  tdm::TdmPolicy policy(&clock);
  policy.services().upsert({"itool", "Interview Tool", tdm::TagSet{"ti"},
                            tdm::TagSet{"ti"}});
  policy.services().upsert({"gdocs", "Google Docs", tdm::TagSet{},
                            tdm::TagSet{}});

  core::BrowserFlowConfig config;
  config.mode = core::EnforcementMode::kBlock;
  core::DecisionEngine engine(config, &tracker, &policy);

  const std::string evaluation =
      "The candidate showed outstanding systems design depth, walking "
      "through a replicated log design with clear failure-mode reasoning, "
      "and gave the strongest whiteboard performance of this cycle.";
  tracker.observeSegment(flow::SegmentKind::kParagraph, "itool/eval-42#p0",
                         "itool/eval-42", "itool", evaluation);
  policy.onSegmentObserved("itool/eval-42#p0", "itool");

  // Decision 1 — allowed: an unrelated note.
  core::DecisionRequest allowedReq;
  allowedReq.segmentName = "gdocs/doc1#p0";
  allowedReq.documentName = "gdocs/doc1";
  allowedReq.serviceId = "gdocs";
  allowedReq.text =
      "Lunch options near the Trento conference venue include three "
      "trattorias, two pizzerias, and an excellent gelato place.";
  const core::Decision allowed = engine.decide(allowedReq);

  // Decision 2 — blocked: a lightly edited paste of the evaluation.
  core::DecisionRequest blockedReq;
  blockedReq.segmentName = "gdocs/doc1#p1";
  blockedReq.documentName = "gdocs/doc1";
  blockedReq.serviceId = "gdocs";
  blockedReq.text =
      "the candidate showed outstanding systems design depth, walking "
      "through a replicated log design with clear failure-mode reasoning.";
  const core::Decision blocked = engine.decide(blockedReq);

  // Decision 3 — degraded: trip the disclosure-lookup circuit breaker
  // (a ~zero latency budget makes every lookup count as slow), then decide
  // while it is open.
  core::ResilienceConfig res;
  res.breakerLatencyBudgetMs = 1e-12;
  res.breakerTripThreshold = 1;
  res.breakerOpenDecisions = 1;
  engine.setResilience(res);
  core::DecisionRequest tripReq = allowedReq;
  tripReq.segmentName = "gdocs/doc1#p2";
  (void)engine.decide(tripReq);  // trips the breaker
  core::DecisionRequest degradedReq = allowedReq;
  degradedReq.segmentName = "gdocs/doc1#p3";
  const core::Decision degraded = engine.decide(degradedReq);

  std::fprintf(stderr,
               "allowed   decision #%llu  action=%d\n"
               "blocked   decision #%llu  violation=%s\n"
               "degraded  decision #%llu  reason via explain():\n",
               static_cast<unsigned long long>(allowed.decisionId),
               static_cast<int>(blocked.action),
               static_cast<unsigned long long>(blocked.decisionId),
               blocked.violation() ? "YES" : "no",
               static_cast<unsigned long long>(degraded.decisionId));
  const auto record =
      obs::FlightRecorder::instance().explain(degraded.decisionId);
  if (record.has_value()) {
    std::fprintf(stderr, "  degraded=%s reason=\"%s\" trace=0x%016llx\n",
                 record->degraded ? "true" : "false",
                 record->degradedReason.c_str(),
                 static_cast<unsigned long long>(record->traceId));
  }

  // The artifact bf_explain.py consumes: every retained decision as JSON.
  std::printf("%s\n",
              obs::toJson(obs::FlightRecorder::instance()).c_str());

  return (blocked.violation() && record.has_value() && record->degraded) ? 0
                                                                         : 1;
}
