// Enterprise deployment: persistence and service adapters.
//
// A realistic IT-department setup across two "days":
//  - day 1: the fingerprint database is built up from internal content and
//    saved to disk, encrypted at rest (paper S4.4's recommendation);
//  - day 2: a fresh BrowserFlow instance restores the snapshot and keeps
//    enforcing — including against a JSON-API service supported through a
//    registered service adapter (S4.4's "service-specific transformation").
//
// Run: ./build/examples/enterprise_deployment

#include <cstdio>

#include "cloud/form_backend.h"
#include "cloud/network.h"
#include "core/deployment.h"
#include "core/plugin.h"
#include "corpus/text_generator.h"

namespace {

constexpr const char* kSnapshotPath = "/tmp/browserflow-example.snapshot";
constexpr const char* kOrgSecret = "example-org-secret";

bf::core::BrowserFlowConfig blockConfig() {
  bf::core::BrowserFlowConfig c;
  c.mode = bf::core::EnforcementMode::kBlock;
  return c;
}

// Adapters are code, not data: they are registered at startup either way.
void configureAdapters(bf::core::BrowserFlowPlugin& plugin) {
  plugin.registerServiceAdapter(
      "https://notes.example",
      std::make_unique<bf::core::JsonFieldAdapter>(
          std::vector<std::string>{"note_text"}));
}

}  // namespace

int main() {
  using namespace bf;

  util::Rng rng(88);
  corpus::TextGenerator gen(&rng);
  const std::string forecast =
      "Confidential revenue forecast: the enterprise segment is projected "
      "to grow twenty eight percent next quarter, driven by the renewal "
      "pipeline and two pending eight figure expansion deals.";

  // ---- Day 1: build the database and snapshot it, encrypted. ------------------
  {
    util::LogicalClock clock;
    core::BrowserFlowPlugin plugin(blockConfig(), &clock);
    configureAdapters(plugin);
    plugin.policy().services().upsert({"https://finance.corp", "Finance Tool",
                                       tdm::TagSet{"fin"},
                                       tdm::TagSet{"fin"}});
    plugin.observeServiceDocument("https://finance.corp",
                                  "https://finance.corp/forecast", forecast);
    for (int i = 0; i < 20; ++i) {
      plugin.observeServiceDocument(
          "https://finance.corp",
          "https://finance.corp/doc" + std::to_string(i), gen.paragraph(6, 9));
    }
    const auto st = core::saveDeployment(plugin, kSnapshotPath, kOrgSecret);
    std::printf("day 1: tracked %zu segments, deployment saved: %s\n",
                plugin.tracker().segmentDb().size(),
                st.ok() ? "ok (encrypted)" : st.errorMessage().c_str());
  }

  // ---- Day 2: a fresh instance restores everything — fingerprints, labels,
  // ---- service policy, audit trail — from the one encrypted file. -------------
  util::LogicalClock clock;
  core::BrowserFlowPlugin plugin(blockConfig(), &clock);
  configureAdapters(plugin);
  const auto restored = core::loadDeployment(plugin, kSnapshotPath, kOrgSecret);
  if (!restored.ok()) {
    std::printf("restore failed: %s\n", restored.errorMessage().c_str());
    return 1;
  }
  clock.advanceTo(restored.value() + 1);
  std::printf("day 2: restored %zu segments, %zu distinct hashes, "
              "%zu services, %zu labels\n",
              plugin.tracker().segmentDb().size(),
              plugin.tracker().hashDb().distinctHashCount(),
              plugin.policy().services().size(),
              plugin.policy().allLabels().size());

  util::Rng rng2(89);
  cloud::SimNetwork network(&rng2);
  cloud::FormBackend notesBackend;
  network.registerService("https://notes.example", &notesBackend);
  browser::Browser browser(&network);
  browser.addExtension(&plugin);

  browser::Page& tab = browser.openTab("https://notes.example/app");
  auto post = [&](const std::string& text) {
    browser::Xhr xhr = tab.newXhr();
    xhr.open("POST", "https://notes.example/api/notes");
    xhr.setRequestHeader("content-type", "application/json");
    return xhr.send(std::string(R"({"note_text": ")") + text + "\"}").status;
  };

  const int blocked = post(forecast);
  std::printf("day 2: paste restored-forecast into JSON notes API -> HTTP %d "
              "(%s)\n",
              blocked, blocked == 403 ? "BLOCKED" : "allowed");
  const int allowed = post("Reminder: all-hands meeting moved to Thursday.");
  std::printf("day 2: innocuous note -> HTTP %d (%s)\n", allowed,
              allowed == 200 ? "allowed" : "blocked");

  std::remove(kSnapshotPath);
  return (blocked == 403 && allowed == 200) ? 0 : 1;
}
