// Live editing in the Docs-style service: shows the advisory (warn) mode
// the paper argues for — paragraph backgrounds turn red while they disclose
// sensitive text and recover as the user edits away from the source, all
// driven by per-keystroke mutation-observer checks (paper S5.2, S6.2).
//
// Run: ./build/examples/docs_live_editing

#include <cstdio>

#include "cloud/docs_backend.h"
#include "cloud/docs_client.h"
#include "cloud/network.h"
#include "core/plugin.h"
#include "corpus/text_generator.h"

namespace {

void printEditor(bf::cloud::DocsClient& docs) {
  for (std::size_t i = 0; i < docs.paragraphCount(); ++i) {
    bf::browser::Node* p = docs.paragraphNode(i);
    const std::string state =
        p->attribute(bf::core::BrowserFlowPlugin::kStateAttr);
    const std::string text = p->textContent();
    std::printf("  [%s] %.60s%s\n",
                state == bf::core::BrowserFlowPlugin::kViolation ? "!!"
                : state.empty()                                  ? "  "
                                                                 : "ok",
                text.c_str(), text.size() > 60 ? "..." : "");
  }
}

}  // namespace

int main() {
  using namespace bf;

  util::LogicalClock clock;
  util::Rng rng(7);
  corpus::TextGenerator gen(&rng);
  cloud::SimNetwork network(&rng);
  cloud::DocsBackend backend;
  network.registerService("https://docs.google.com", &backend);

  core::BrowserFlowPlugin plugin(core::BrowserFlowConfig{}, &clock);  // warn
  plugin.policy().services().upsert({"https://crm.corp", "CRM",
                                     tdm::TagSet{"crm"}, tdm::TagSet{"crm"}});

  browser::Browser browser(&network);
  browser.addExtension(&plugin);

  // Sensitive CRM notes already exist inside the organisation.
  const std::string crmNotes =
      "Acme Corp renewal: they signalled budget pressure and asked for a "
      "nineteen percent discount; legal flagged the liability clause, and "
      "the champion is leaving at the end of the quarter.";
  plugin.observeServiceDocument("https://crm.corp",
                                "https://crm.corp/accounts/acme", crmNotes);

  browser::Page& tab = browser.openTab("https://docs.google.com/d/notes");
  cloud::DocsClient docs(tab, "notes");
  docs.openDocument();

  std::printf("1) typing fresh meeting notes (clean):\n");
  docs.insertParagraph(0, "Agenda: quarterly business review with Acme.");
  printEditor(docs);

  std::printf("\n2) pasting CRM notes (red background — advisory warning):\n");
  docs.insertParagraph(1, crmNotes);
  printEditor(docs);
  std::printf("   warnings so far: %zu\n", plugin.warnings().size());

  std::printf("\n3) the user trims the paragraph down to a harmless line:\n");
  docs.setParagraph(1, "Acme renewal: commercial discussion ongoing.");
  printEditor(docs);

  std::printf("\n4) per-keystroke editing stays fast via the decision "
              "cache:\n");
  plugin.tracker().resetStats();
  docs.typeText(0, " Attendees: sales, legal, product.");
  const auto& stats = plugin.tracker().stats();
  std::printf("   keystroke decisions: %llu, served from cache: %llu\n",
              static_cast<unsigned long long>(stats.queries +
                                              stats.cacheHits),
              static_cast<unsigned long long>(stats.cacheHits));

  std::printf("\nfinal document as the cloud service stored it:\n");
  for (const auto& p : backend.paragraphsOf("notes")) {
    std::printf("  | %.70s%s\n", p.c_str(), p.size() > 70 ? "..." : "");
  }
  std::printf("\n(advisory mode: everything was uploaded, but the user was "
              "warned at step 2)\n");
  return 0;
}
