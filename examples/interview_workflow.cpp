// Interview workflow: the paper's running example (Figs. 1 and 3-5) driven
// end-to-end through the full simulated stack — browser tabs, three cloud
// services, and the BrowserFlow plug-in in blocking mode.
//
//   Interview Tool (Lp = Lc = {ti})      internal, holds candidate data
//   Internal Wiki  (Lp = Lc = {tw})      internal, holds company knowledge
//   Google Docs    (unregistered)        external, untrusted
//
// Run: ./build/examples/interview_workflow

#include <cstdio>

#include "cloud/docs_backend.h"
#include "cloud/docs_client.h"
#include "cloud/form_backend.h"
#include "cloud/network.h"
#include "cloud/wiki_client.h"
#include "core/plugin.h"

int main() {
  using namespace bf;

  util::LogicalClock clock;
  util::Rng rng(2016);
  cloud::SimNetwork network(&rng);
  cloud::DocsBackend docsBackend;
  cloud::FormBackend wikiBackend;
  cloud::FormBackend itoolBackend;
  network.registerService("https://docs.google.com", &docsBackend);
  network.registerService("https://wiki.corp", &wikiBackend);
  network.registerService("https://itool.corp", &itoolBackend);

  core::BrowserFlowConfig config;
  config.mode = core::EnforcementMode::kBlock;  // mandatory enforcement
  core::BrowserFlowPlugin plugin(config, &clock);
  plugin.policy().services().upsert({"https://itool.corp", "Interview Tool",
                                     tdm::TagSet{"ti"}, tdm::TagSet{"ti"}});
  plugin.policy().services().upsert({"https://wiki.corp", "Internal Wiki",
                                     tdm::TagSet{"tw"}, tdm::TagSet{"tw"}});

  browser::Browser browser(&network);
  browser.addExtension(&plugin);

  // --- The interviewer reads a candidate evaluation in the Interview Tool.
  browser::Page& itoolTab = browser.openTab("https://itool.corp/eval/101");
  itoolTab.loadHtml(R"(
    <div id="nav"><a href="/">Interview Tool</a><a href="/queue">Queue</a></div>
    <div id="content">
      <p>Candidate 101 impressed in the distributed-systems interview, with a
      crisp treatment of leader election, log compaction, and failure
      recovery, scoring at the strong-hire bar.</p>
      <p>Concerns were limited to breadth in storage internals, which the
      next round should probe, focusing on compaction strategies, caches,
      and write amplification.</p>
    </div>)");
  plugin.scanPage(itoolTab);
  std::printf("[itool] evaluation page scanned and tracked\n");

  const std::string leakedText =
      "Candidate 101 impressed in the distributed-systems interview, with a "
      "crisp treatment of leader election, log compaction, and failure "
      "recovery, scoring at the strong-hire bar.";

  // --- Attempt 1: paste the evaluation into the internal Wiki.
  browser::Page& wikiTab = browser.openTab("https://wiki.corp/edit/hiring");
  cloud::WikiClient wiki(wikiTab, "hiring");
  wiki.openEditor();
  wiki.setContent(leakedText);
  int status = wiki.save();
  std::printf("[wiki ] paste evaluation -> save(): %s (posts stored: %zu)\n",
              status == 0 ? "BLOCKED" : "allowed", wikiBackend.postCount());

  // --- Attempt 2: paste it into Google Docs.
  browser::Page& docsTab = browser.openTab("https://docs.google.com/d/report");
  cloud::DocsClient docs(docsTab, "report");
  docs.openDocument();
  status = docs.insertParagraph(0, leakedText);
  std::printf("[gdocs] paste evaluation -> HTTP %d (%s)\n", status,
              status == 403 ? "BLOCKED by BrowserFlow" : "allowed");
  docs.deleteParagraph(0);

  // --- Attempt 3: the user rewrites the idea in their own words — no
  //     textual resemblance, so BrowserFlow stays quiet (by design).
  status = docs.insertParagraph(
      0,
      "Hiring update: the latest systems loop went very well and we expect "
      "to extend an offer pending the final storage-internals round.");
  std::printf("[gdocs] genuine rewrite  -> HTTP %d (%s)\n", status,
              status == 200 ? "allowed" : "blocked");

  // --- Attempt 4: declassification. The interviewer copies the evaluation
  //     again, reviews the warning, suppresses the tag with a justification
  //     and retries: this time the upload goes through, with an audit trail.
  status = docs.insertParagraph(1, leakedText);
  std::printf("[gdocs] paste again      -> HTTP %d\n", status);
  const std::string segment = plugin.segmentNameOf(docs.paragraphNode(1));
  plugin.suppressTag("alice", segment, "ti",
                     "candidate consented to sharing the summary");
  status = docs.typeChar(1, '.');  // re-triggers the pipeline
  std::printf("[gdocs] after suppression-> HTTP %d (%s)\n", status,
              status == 200 ? "allowed, audited" : "still blocked");

  // --- What did the organisation record?
  std::printf("\naudit trail (%zu records):\n", plugin.policy().audit().size());
  for (const auto& rec : plugin.policy().audit().records()) {
    const char* kind = "?";
    switch (rec.kind) {
      case tdm::AuditRecord::Kind::kTagSuppressed:      kind = "tag-suppressed"; break;
      case tdm::AuditRecord::Kind::kCustomTagAllocated: kind = "custom-tag"; break;
      case tdm::AuditRecord::Kind::kPrivilegeChanged:   kind = "privilege"; break;
      case tdm::AuditRecord::Kind::kUploadBlocked:      kind = "upload-blocked"; break;
      case tdm::AuditRecord::Kind::kUploadEncrypted:    kind = "upload-encrypted"; break;
      case tdm::AuditRecord::Kind::kViolationWarned:    kind = "violation-warned"; break;
    }
    std::printf("  t=%llu %-17s user=%-6s tag=%-3s %s\n",
                static_cast<unsigned long long>(rec.at), kind,
                rec.user.empty() ? "-" : rec.user.c_str(),
                rec.tag.empty() ? "-" : rec.tag.c_str(),
                rec.justification.c_str());
  }

  std::printf("\nfinal Google Docs content (as stored by the service):\n");
  for (const auto& p : docsBackend.paragraphsOf("report")) {
    std::printf("  | %.70s%s\n", p.c_str(), p.size() > 70 ? "..." : "");
  }
  return 0;
}
