// DLP gateway: encrypt-before-upload enforcement (paper S3, S5).
//
// Instead of blocking, the enforcement module transparently seals violating
// payloads with ChaCha20 before they leave the browser: the external
// service stores ciphertext; anyone inside the organisation holding the
// org secret can still recover the text. This is the "client-side
// middleware" deployment style the paper cites (S2.2).
//
// Run: ./build/examples/dlp_gateway

#include <cstdio>

#include "cloud/form_backend.h"
#include "cloud/network.h"
#include "cloud/wiki_client.h"
#include "core/plugin.h"

int main() {
  using namespace bf;

  util::LogicalClock clock;
  util::Rng rng(11);
  cloud::SimNetwork network(&rng);
  cloud::FormBackend pastebin;  // an external paste service
  cloud::FormBackend hrTool;
  network.registerService("https://pastebin.example", &pastebin);
  network.registerService("https://hr.corp", &hrTool);

  core::BrowserFlowConfig config;
  config.mode = core::EnforcementMode::kEncrypt;
  config.orgSecret = "example-org-master-secret";
  core::BrowserFlowPlugin plugin(config, &clock);
  plugin.policy().services().upsert({"https://hr.corp", "HR Tool",
                                     tdm::TagSet{"hr"}, tdm::TagSet{"hr"}});

  browser::Browser browser(&network);
  browser.addExtension(&plugin);

  // Salary data lives in the HR tool.
  const std::string salaryTable =
      "Compensation bands for the platform team: L4 ranges one hundred "
      "forty to one hundred seventy, L5 ranges one hundred seventy five to "
      "two hundred ten, L6 is individually negotiated with the committee.";
  plugin.observeServiceDocument("https://hr.corp", "https://hr.corp/comp",
                                salaryTable);

  // An employee pastes the band table into an external paste service.
  browser::Page& tab = browser.openTab("https://pastebin.example/new");
  cloud::WikiClient paste(tab, "comp-bands");
  paste.openEditor();
  paste.setContent(salaryTable);
  const int status = paste.save();
  std::printf("submit to pastebin: HTTP %d\n", status);

  // What did the external service actually receive?
  std::printf("\nstored at the external service:\n");
  std::string storedCiphertext;
  for (const auto& [key, value] : pastebin.documents()) {
    std::printf("  %s = %.60s...\n", key.c_str(), value.c_str());
    if (crypto::Sealer::isSealed(value)) storedCiphertext = value;
  }

  if (storedCiphertext.empty()) {
    std::printf("ERROR: expected sealed content\n");
    return 1;
  }
  std::printf("\nexternal service sees ciphertext only: YES\n");

  // Inside the organisation, the payload is recoverable.
  const auto recovered = plugin.sealer().unseal(storedCiphertext);
  std::printf("organisation can unseal: %s\n",
              recovered.has_value() ? "YES" : "no");
  if (recovered) {
    std::printf("  recovered: %.60s...\n", recovered->c_str());
  }

  // Non-sensitive pastes pass through in the clear.
  paste.setContent("Does anyone have the wifi password for the offsite?");
  paste.save();
  bool sawPlain = false;
  for (const auto& [key, value] : pastebin.documents()) {
    if (!crypto::Sealer::isSealed(value) &&
        value.find("wifi") != std::string::npos) {
      sawPlain = true;
    }
  }
  std::printf("non-sensitive paste stored in the clear: %s\n",
              sawPlain ? "YES" : "no");

  std::printf("\naudit: %zu upload(s) encrypted\n",
              plugin.policy()
                  .audit()
                  .byKind(tdm::AuditRecord::Kind::kUploadEncrypted)
                  .size());
  return recovered.has_value() && *recovered == salaryTable ? 0 : 1;
}
