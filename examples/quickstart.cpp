// Quickstart: the smallest useful BrowserFlow setup.
//
// Creates the policy of the paper's running example, registers a sensitive
// document, and asks BrowserFlow whether two candidate texts may be
// uploaded to an untrusted service. No browser simulation — just the flow
// tracker + TDM, which is what you embed if you only need the engine.
//
// Run: ./build/examples/quickstart

#include <cstdio>

#include "core/decision_engine.h"
#include "flow/tracker.h"
#include "tdm/policy.h"
#include "util/clock.h"

int main() {
  using namespace bf;

  // One clock drives observation timestamps and audit records.
  util::LogicalClock clock;

  // 1. The flow tracker: winnowing fingerprints with the paper's defaults
  //    (32-bit hashes, 15-char n-grams, 30-char windows, T_par = 0.5).
  flow::FlowTracker tracker(flow::TrackerConfig{}, &clock);

  // 2. The TDM policy: the Interview Tool is trusted with tag "ti";
  //    Google Docs is external and untrusted (no privilege tags).
  tdm::TdmPolicy policy(&clock);
  policy.services().upsert({"itool", "Interview Tool", tdm::TagSet{"ti"},
                            tdm::TagSet{"ti"}});
  policy.services().upsert({"gdocs", "Google Docs", tdm::TagSet{},
                            tdm::TagSet{}});

  // 3. The decision engine glues them together.
  core::BrowserFlowConfig config;  // advisory (warn) mode
  core::DecisionEngine engine(config, &tracker, &policy);

  // A confidential candidate evaluation lives in the Interview Tool.
  const std::string evaluation =
      "The candidate showed outstanding systems design depth, walking "
      "through a replicated log design with clear failure-mode reasoning, "
      "and gave the strongest whiteboard performance of this cycle.";
  tracker.observeSegment(flow::SegmentKind::kParagraph, "itool/eval-42#p0",
                         "itool/eval-42", "itool", evaluation);
  policy.onSegmentObserved("itool/eval-42#p0", "itool");

  // Scenario A: the user pastes a lightly edited copy into Google Docs.
  const std::string pasted =
      "the candidate showed outstanding systems design depth, walking "
      "through a replicated log design with clear failure-mode reasoning.";
  core::DecisionRequest pasteReq;
  pasteReq.segmentName = "gdocs/doc1#p0";
  pasteReq.documentName = "gdocs/doc1";
  pasteReq.serviceId = "gdocs";
  pasteReq.text = pasted;
  core::Decision d1 = engine.decide(pasteReq);
  std::printf("paste of evaluation into Google Docs:\n");
  std::printf("  violation = %s\n", d1.violation() ? "YES" : "no");
  for (const auto& hit : d1.hits) {
    std::printf("  disclosed source: %s (D = %.2f, threshold %.2f)\n",
                hit.sourceName.c_str(), hit.score, hit.threshold);
    // Attribution (paper S4.1): which source passage caused the report?
    const auto ranges = tracker.attributeDisclosure(
        hit.source, tracker.fingerprintOf(pasted));
    for (const auto& [begin, end] : ranges) {
      const std::size_t len = std::min(end, evaluation.size()) - begin;
      std::printf("  implicated passage: \"%.60s%s\"\n",
                  evaluation.substr(begin, len).c_str(),
                  len > 60 ? "..." : "");
    }
  }
  for (const auto& tag : d1.violatingTags) {
    std::printf("  violating tag: %s\n", tag.c_str());
  }

  // Scenario B: an unrelated note is free to go anywhere.
  core::DecisionRequest noteReq;
  noteReq.segmentName = "gdocs/doc1#p1";
  noteReq.documentName = "gdocs/doc1";
  noteReq.serviceId = "gdocs";
  noteReq.text =
      "Lunch options near the Trento conference venue include three "
      "trattorias, two pizzerias, and an excellent gelato place.";
  core::Decision d2 = engine.decide(noteReq);
  std::printf("unrelated note into Google Docs:\n  violation = %s\n",
              d2.violation() ? "YES" : "no");

  // Scenario C: the user declassifies the copy (audited), then re-checks.
  policy.suppressTag("alice", "gdocs/doc1#p0", "ti",
                     "anonymised before sharing with the panel");
  core::Decision d3 = engine.decide(pasteReq);
  std::printf("after tag suppression:\n  violation = %s\n",
              d3.violation() ? "YES" : "no");
  std::printf("audit records: %zu\n", policy.audit().size());

  return (d1.violation() && !d2.violation() && !d3.violation()) ? 0 : 1;
}
