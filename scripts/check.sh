#!/usr/bin/env bash
# Full pre-merge check: lint, then configure/build/test the selected
# presets, sequentially (never overlap two builds in one build dir).
#
#   scripts/check.sh                                  # default + asan
#   BF_CHECK_PRESETS="default" scripts/check.sh       # subset
#   BF_CHECK_PRESETS="default asan ubsan tsan" scripts/check.sh  # full matrix
#
# The tsan preset runs the concurrency-relevant tests under ThreadSanitizer
# and then the bench_stress_concurrency binary (a short configuration), so
# the lock migration is exercised under real contention, not just unit load.
set -euo pipefail

cd "$(dirname "$0")/.."

PRESETS=${BF_CHECK_PRESETS:-"default asan"}
JOBS=${BF_CHECK_JOBS:-$(nproc 2>/dev/null || echo 4)}

echo "==> [lint] bflint self-test"
python3 scripts/bflint.py --selftest
echo "==> [lint] bflint over src/ bench/ examples/"
python3 scripts/bflint.py src bench examples
echo "==> [lint] bftaint self-test"
python3 scripts/bftaint.py --selftest
echo "==> [lint] bftaint over src/ bench/ examples/"
python3 scripts/bftaint.py src bench examples
echo "==> [lint] negative-compile harness (sec type layer)"
python3 scripts/negcompile.py --compiler "${CXX:-c++}" --std c++20 -I src

for preset in $PRESETS; do
  echo "==> [$preset] configure"
  cmake --preset "$preset"
  echo "==> [$preset] build"
  cmake --build --preset "$preset" -j "$JOBS"
  echo "==> [$preset] test"
  ctest --preset "$preset"
  if [ "$preset" = "tsan" ]; then
    echo "==> [tsan] bench_stress_concurrency under ThreadSanitizer"
    BF_STRESS_USERS=8 BF_STRESS_DECISIONS=50 \
      "build-tsan/bench/bench_stress_concurrency"
  fi
  if [ "$preset" = "default" ]; then
    # Crash-recovery fuzz at a pinned seed: the same 500 corruption trials
    # on every machine and every run, so a red leg is a real regression in
    # the WAL/checkpoint recovery path, never fuzz luck (ctest already runs
    # the default configuration; this leg pins it explicitly).
    echo "==> [default] recovery fuzz, fixed seed"
    BF_RECOVERY_FUZZ_SEED=20260805 BF_RECOVERY_FUZZ_TRIALS=500 \
      "build/tests/recovery_fuzz_test" \
      --gtest_filter='RecoveryFuzzTest.RecoveredStateIsAlwaysAPrefixOfHistory'
    # Storage chaos at a pinned seed: 300 trials that open a runtime fault
    # window (ENOSPC / torn writes / fsync failures via FaultVfs) mid-run,
    # require the WAL health state machine to self-heal, then crash and
    # demand byte-equal recovery at the last durable sequence.
    echo "==> [default] storage chaos, fixed seed"
    BF_STORAGE_FUZZ_SEED=20260809 BF_STORAGE_FUZZ_TRIALS=300 \
      "build/tests/recovery_fuzz_test" \
      --gtest_filter='RecoveryFuzzTest.SelfHealsAfterInjectedStorageFaultWindow'
  fi
done

# BF_CHECK_BENCH=1 exercises the bench pipeline end to end with a short
# run (noisy numbers, real wiring): every bench must start, emit parseable
# output, and the regression gate must find all its metrics — including
# the provenance-overhead phase — against the newest BENCH_PR*.json
# baseline. Smoke mode checks wiring only; run scripts/bench_gate.py
# without --smoke for the real >10%-regression / <3%-overhead gate.
if [ "${BF_CHECK_BENCH:-0}" = "1" ]; then
  echo "==> [bench] bench_gate.py --smoke"
  python3 scripts/bench_gate.py --smoke --build-dir build
fi

echo "==> all presets green: $PRESETS"
