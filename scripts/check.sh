#!/usr/bin/env bash
# Full pre-merge check: configure, build, and test the default and asan
# presets, sequentially (never overlap two builds in one build dir).
#
#   scripts/check.sh            # default + asan
#   BF_CHECK_PRESETS="default"  scripts/check.sh   # subset
set -euo pipefail

cd "$(dirname "$0")/.."

PRESETS=${BF_CHECK_PRESETS:-"default asan"}
JOBS=${BF_CHECK_JOBS:-$(nproc 2>/dev/null || echo 4)}

for preset in $PRESETS; do
  echo "==> [$preset] configure"
  cmake --preset "$preset"
  echo "==> [$preset] build"
  cmake --build --preset "$preset" -j "$JOBS"
  echo "==> [$preset] test"
  ctest --preset "$preset"
done

echo "==> all presets green: $PRESETS"
