#!/usr/bin/env python3
"""bench_gate -- the bench regression gate.

Runs a fresh bench sweep (via scripts/bench_report.py's runners; the
stress bench best-of-3 in gating mode, since lone QPS samples on a
loaded single-core host are ±30% noise), diffs the headline numbers
against the newest committed BENCH_PR*.json, and fails when the
decision path got slower:

  * micro-fingerprint throughput (BM_FingerprintTextFusedWorkspace/16384
    MB/s) regressing by more than --max-regression percent;
  * multi-reader scaling (each multi_reader mode/reader-count QPS)
    regressing by more than --max-regression percent;
  * lock-free read-path scaling: shared_r8 QPS must reach at least 2x
    shared_r1 on hosts with >= 8 hardware threads (on smaller hosts the
    reader threads time-slice the same cores and the ratio measures the
    scheduler, so the check passes with a logged skip);
  * provenance overhead (the stress bench's interleaved on/off comparison)
    at or above --max-overhead percent of the decision path;
  * the durability-fault sweep (bench_recovery's FaultVfs phase) missing a
    rate or ending unhealed — a robustness presence check, not a
    percentage, since fault-injected goodput is environment-noisy.

The fresh report plus the per-check verdicts are written to --out
(BENCH_PR6.json by default), so the PR carries its numbers and the gate's
reasoning in one artifact.

Usage:
    scripts/bench_gate.py [--build-dir build] [--baseline BENCH_PR4.json]
                          [--out BENCH_PR6.json] [--max-regression 10]
                          [--max-overhead 3] [--smoke]

--smoke (used by scripts/check.sh when BF_CHECK_BENCH=1) runs the quick
bench configuration and only checks the wiring: the sweep must run, the
RESULT channels must parse, the provenance phase must report, and the
baseline must load. Quick-run numbers are far too noisy to gate on, so
smoke mode never fails on a percentage and writes its artifact to the
build tree instead of BENCH_PR6.json.

Exit status: 0 when every check passes, 1 on any regression (or, in smoke
mode, any wiring breakage).
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import re
import sys

SCRIPT_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(SCRIPT_DIR)
sys.path.insert(0, SCRIPT_DIR)

import bench_report  # noqa: E402  (sibling module, not a package)

MICRO_HEADLINE = "BM_FingerprintTextFusedWorkspace/16384"


def newest_baseline(exclude: str) -> str | None:
    """The highest-numbered bench report BENCH_PR<N>.json in the repo root.

    This run's own --out also matches the name pattern, so it is excluded
    explicitly, and anything unreadable or schema-foreign is skipped —
    a gate artifact is itself a bf-bench-report-v1 (with an extra "gate"
    key), so last PR's gate output is next PR's baseline.
    """
    best, best_n = None, -1
    for path in glob.glob(os.path.join(REPO_ROOT, "BENCH_PR*.json")):
        if os.path.abspath(path) == os.path.abspath(exclude):
            continue
        m = re.fullmatch(r"BENCH_PR(\d+)\.json", os.path.basename(path))
        if m is None or int(m.group(1)) <= best_n:
            continue
        try:
            with open(path) as f:
                if json.load(f).get("schema") != "bf-bench-report-v1":
                    continue
        except (OSError, json.JSONDecodeError):
            continue
        best, best_n = path, int(m.group(1))
    return best


def run_fresh_report(build_dir: str, quick: bool) -> dict:
    report = {
        "schema": "bf-bench-report-v1",
        "generated_by": "scripts/bench_gate.py",
        "build_dir": build_dir,
    }
    print("==> bench_micro_fingerprint", flush=True)
    report["micro_fingerprint"] = bench_report.run_micro(build_dir, quick)
    print("==> bench_stress_concurrency", flush=True)
    quick_env = (
        {"BF_STRESS_USERS": "4", "BF_STRESS_DECISIONS": "200"} if quick else {}
    )
    # Full (gating) mode runs the stress bench three times and keeps the
    # per-metric best: a single QPS sample on a loaded single-core host
    # swings ±30% with scheduler luck, which would drown the 10% gate.
    # Baselines must be recorded the same way (bench_report.py
    # --stress-repeats 3) so the estimator is symmetric.
    report["stress_concurrency"] = bench_report.run_results_bench(
        os.path.join(build_dir, "bench", "bench_stress_concurrency"),
        {}, quick_env, repeats=1 if quick else 3)
    print("==> bench_recovery", flush=True)
    quick_env = {"BF_RECOVERY_SEGMENTS": "500"} if quick else {}
    report["recovery"] = bench_report.run_results_bench(
        os.path.join(build_dir, "bench", "bench_recovery"), {}, quick_env)
    report["summary"] = bench_report.summarize(report)
    return report


def micro_mb_per_s(report: dict, name: str):
    for b in report.get("micro_fingerprint", {}).get("benchmarks", []):
        if b.get("name") == name:
            return b.get("mb_per_s")
    return None


def multi_reader_qps(report: dict) -> dict:
    out = {}
    for r in report.get("stress_concurrency", {}).get("results", []):
        if r.get("bench") == "multi_reader":
            out[f"{r['mode']}_r{r['readers']}"] = r.get("queries_per_s")
    return out


def multi_reader_hw_cores(report: dict):
    for r in report.get("stress_concurrency", {}).get("results", []):
        if r.get("bench") == "multi_reader":
            return r.get("hw_cores")
    return None


def scaling_check(report: dict, min_speedup: float, min_cores: int) -> dict:
    """Lock-free read-path scaling: shared_r8 must reach min_speedup x the
    shared_r1 QPS — but only on hosts with at least min_cores hardware
    threads. On smaller boxes the reader threads time-slice the same
    core(s) and the ratio measures the scheduler, not the tracker, so the
    check passes with a logged skip instead."""
    readers = multi_reader_qps(report)
    cores = multi_reader_hw_cores(report)
    r1, r8 = readers.get("shared_r1"), readers.get("shared_r8")
    speedup = round(r8 / r1, 2) if r1 and r8 is not None else None
    check = {"name": "multi_reader_scaling:shared_r8_vs_r1",
             "fresh": speedup, "required": min_speedup, "hw_cores": cores}
    if cores is None or cores < min_cores:
        check.update(passed=True,
                     note=f"skipped: host has {cores} core(s) "
                          f"(< {min_cores}); reader threads time-slice one "
                          "core, so r8/r1 scaling is not measurable here")
    elif speedup is None:
        check.update(passed=False,
                     note="shared_r1/shared_r8 missing from fresh report")
    else:
        check.update(passed=speedup >= min_speedup)
    return check


def durability_fault_rates(report: dict) -> list:
    return sorted(
        r.get("rate")
        for r in report.get("recovery", {}).get("results", [])
        if r.get("bench") == "durability_faults"
    )


def provenance_overhead_pct(report: dict):
    for r in report.get("stress_concurrency", {}).get("results", []):
        if r.get("bench") == "provenance_overhead":
            return r.get("overhead_pct")
    return None


def regression_check(name: str, baseline, fresh, max_regression: float) -> dict:
    """Higher-is-better metric: fails when fresh falls >N% below baseline."""
    check = {"name": name, "baseline": baseline, "fresh": fresh}
    if not baseline or fresh is None:
        check.update(regression_pct=None, passed=True,
                     note="metric missing on one side; not gated")
        return check
    pct = (baseline - fresh) / baseline * 100.0
    check.update(regression_pct=round(pct, 2), passed=pct <= max_regression)
    return check


def main() -> int:
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--baseline",
                    help="baseline report (default: newest BENCH_PR*.json)")
    ap.add_argument("--out",
                    help="gate artifact (default: BENCH_PR6.json; smoke "
                         "mode defaults into the build tree)")
    ap.add_argument("--max-regression", type=float, default=10.0,
                    help="max tolerated throughput drop, percent")
    ap.add_argument("--max-overhead", type=float, default=3.0,
                    help="max tolerated provenance overhead, percent")
    ap.add_argument("--smoke", action="store_true",
                    help="quick run, wiring checks only (check.sh mode)")
    args = ap.parse_args()

    out_path = args.out or (
        os.path.join(args.build_dir, "bench-gate-smoke.json") if args.smoke
        else os.path.join(REPO_ROOT, "BENCH_PR6.json"))

    baseline_path = args.baseline or newest_baseline(exclude=out_path)
    if baseline_path is None:
        print("bench_gate: no BENCH_PR*.json baseline found", file=sys.stderr)
        return 1
    with open(baseline_path) as f:
        baseline = json.load(f)

    fresh = run_fresh_report(args.build_dir, quick=args.smoke)

    checks = [
        regression_check(
            f"micro_fingerprint:{MICRO_HEADLINE}:mb_per_s",
            micro_mb_per_s(baseline, MICRO_HEADLINE),
            micro_mb_per_s(fresh, MICRO_HEADLINE),
            args.max_regression),
    ]
    base_readers = multi_reader_qps(baseline)
    fresh_readers = multi_reader_qps(fresh)
    for key in sorted(base_readers):
        checks.append(regression_check(
            f"multi_reader:{key}:queries_per_s",
            base_readers.get(key), fresh_readers.get(key),
            args.max_regression))

    reader_scaling = scaling_check(fresh, min_speedup=2.0, min_cores=8)

    overhead = provenance_overhead_pct(fresh)
    overhead_check = {
        "name": "provenance_overhead_pct",
        "fresh": overhead,
        "budget": args.max_overhead,
        "passed": overhead is not None and overhead < args.max_overhead,
    }

    # Robustness, not a percentage: the durability-fault sweep must have
    # run every rate and healed (bench_recovery exits nonzero — aborting
    # the gate — when a leg ends unhealed), so a broken FaultVfs wiring or
    # repair state machine cannot pass silently.
    fault_rates = durability_fault_rates(fresh)
    durability_check = {
        "name": "durability_fault_sweep",
        "fresh": fault_rates,
        "passed": len(fault_rates) >= 4,
        "note": "presence: every sweep rate reported and self-healed",
    }

    if args.smoke:
        # Wiring-only verdicts: every metric must be present and parseable;
        # quick-run percentages are noise, not signal.
        failures = [c["name"] for c in checks if c["fresh"] is None]
        if overhead is None:
            failures.append("provenance_overhead_pct")
        if not durability_check["passed"]:
            failures.append(durability_check["name"])
        if reader_scaling["fresh"] is None \
                and "skipped" not in reader_scaling.get("note", ""):
            failures.append(reader_scaling["name"])
        gate_pass = not failures
        for c in checks:
            c["passed"] = c["fresh"] is not None
            c["note"] = "smoke: presence only, percentage not gated"
        overhead_check["passed"] = overhead is not None
        overhead_check["note"] = "smoke: presence only, percentage not gated"
        if "skipped" not in reader_scaling.get("note", ""):
            reader_scaling["passed"] = reader_scaling["fresh"] is not None
            reader_scaling["note"] = \
                "smoke: presence only, ratio not gated"
    else:
        failures = [c["name"] for c in checks if not c["passed"]]
        if not overhead_check["passed"]:
            failures.append(overhead_check["name"])
        if not durability_check["passed"]:
            failures.append(durability_check["name"])
        if not reader_scaling["passed"]:
            failures.append(reader_scaling["name"])
        gate_pass = not failures

    # The artifact IS a bf-bench-report-v1 (fresh numbers at the top level,
    # so the next PR's gate can baseline against it) plus the gate verdicts.
    artifact = {
        **fresh,
        "gate": {
            "mode": "smoke" if args.smoke else "full",
            "baseline_file": os.path.basename(baseline_path),
            "max_regression_pct": args.max_regression,
            "max_provenance_overhead_pct": args.max_overhead,
            "provenance_overhead": overhead_check,
            "multi_reader_scaling": reader_scaling,
            "durability_fault_sweep": durability_check,
            "checks": checks,
            "pass": gate_pass,
        },
    }
    with open(out_path, "w") as f:
        json.dump(artifact, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"==> wrote {out_path}")

    for c in checks + [reader_scaling, overhead_check, durability_check]:
        status = "ok  " if c["passed"] else "FAIL"
        if "regression_pct" in c:
            detail = f"{c.get('regression_pct')}% regression"
        elif c["name"] == "durability_fault_sweep":
            detail = f"rates {c.get('fresh')}"
        elif c["name"].startswith("multi_reader_scaling"):
            detail = (f"{c.get('fresh')}x vs required "
                      f"{c.get('required')}x ({c.get('note', 'gated')})"
                      if "note" in c else
                      f"{c.get('fresh')}x vs required {c.get('required')}x")
        else:
            detail = f"{c.get('fresh')}%"
        print(f"gate {status} {c['name']}: {detail}")
    if not gate_pass:
        print(f"bench_gate: FAILED ({', '.join(failures)})", file=sys.stderr)
        return 1
    print("bench_gate: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
