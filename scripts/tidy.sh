#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy) over the project sources using the
# compile database exported by the default preset.
#
#   scripts/tidy.sh                 # whole tree (src/ bench/ examples/)
#   scripts/tidy.sh src/flow        # subset
#
# clang-tidy is optional tooling: on machines without it (the CI container
# ships only GCC) this script prints a notice and exits 0, so check
# pipelines can call it unconditionally.
set -euo pipefail

cd "$(dirname "$0")/.."

TIDY=${CLANG_TIDY:-clang-tidy}
if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "tidy.sh: $TIDY not found; skipping (install clang-tidy to enable)"
  exit 0
fi

BUILD_DIR=${BF_TIDY_BUILD_DIR:-build}
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "tidy.sh: $BUILD_DIR/compile_commands.json missing; configuring..."
  cmake --preset default >/dev/null
fi

ROOTS=("$@")
if [ ${#ROOTS[@]} -eq 0 ]; then
  ROOTS=(src bench examples)
fi

FILES=$(find "${ROOTS[@]}" -name '*.cpp' | sort)
echo "tidy.sh: checking $(echo "$FILES" | wc -l) files against $BUILD_DIR"
# shellcheck disable=SC2086
"$TIDY" -p "$BUILD_DIR" --quiet $FILES
echo "tidy.sh: clean"
