#!/usr/bin/env python3
"""bf_explain -- pretty-print flight-recorder decision traces.

Reads the `bf-flight-v1` JSON that src/obs/export.cpp renders from the
decision flight recorder (obs::toJson(obs::FlightRecorder::instance()))
and prints each decision as a human-readable causal record: ingress →
per-stage latency → verdict, with the matched sources, the scores that
drove the verdict, and any retry history the transport annotated.

Usage:
    bf_explain.py flight.json              # all retained decisions
    bf_explain.py --decision 42 flight.json
    bf_explain.py --trace 0x9a3f... flight.json
    some_tool --dump-flight | bf_explain.py -

See the README's "Explaining a decision" walkthrough and
examples/explain_decision.cpp for producing the input.
"""

from __future__ import annotations

import argparse
import json
import sys

STAGE_ORDER = [
    "normalize", "fingerprint", "tracker_lock_wait", "tracker_lookup",
    "policy_eval", "wal_append", "queue_wait",
]


def fmt_us(nanos: int) -> str:
    return f"{nanos / 1000.0:10.1f} us"


def fmt_trace_id(value: int) -> str:
    return f"0x{value:016x}"


def parse_trace_id(text: str) -> int:
    return int(text, 16) if text.lower().startswith("0x") else int(text)


def explain_decision(d: dict, out) -> None:
    verdict = d.get("action", "?")
    flags = []
    if d.get("violation"):
        flags.append("VIOLATION")
    if d.get("degraded"):
        flags.append(f"DEGRADED ({d.get('degraded_reason', '?')})")
    if d.get("durability_degraded"):
        flags.append("DURABILITY-DEGRADED")
    headline = f"decision #{d.get('decision_id')}  ->  {verdict}"
    if flags:
        headline += "  [" + ", ".join(flags) + "]"
    print(headline, file=out)
    print(f"  trace   {fmt_trace_id(d.get('trace_id', 0))}"
          f"  span 0x{d.get('span_id', 0):x}"
          f"  sampled={str(bool(d.get('sampled'))).lower()}", file=out)
    print(f"  ingress {d.get('ingress', '?')}", file=out)
    print(f"  what    segment={d.get('segment', '?')}"
          f"  document={d.get('document', '?')}", file=out)
    print(f"  where   service={d.get('service', '?')}"
          f"  bytes_scanned={d.get('bytes_scanned', 0)}", file=out)

    stages = d.get("stages", {})
    timed = [(name, stages.get(f"{name}_ns", 0)) for name in STAGE_ORDER]
    timed = [(name, ns) for name, ns in timed if ns]
    if timed:
        total = sum(ns for _, ns in timed)
        print("  stages", file=out)
        for name, ns in timed:
            share = ns / total * 100.0
            print(f"    {name:<18}{fmt_us(ns)}  {share:5.1f}%", file=out)
        print(f"    {'total':<18}{fmt_us(total)}"
              f"  (end-to-end {d.get('total_ms', 0.0):.3f} ms)", file=out)

    hits = d.get("hits", [])
    if hits:
        print("  matched sources (score vs threshold)", file=out)
        for h in hits:
            mark = ">=" if h.get("score", 0) >= h.get("threshold", 0) else "< "
            print(f"    {h.get('source', '?'):<40}"
                  f" {h.get('score', 0):6.3f} {mark} {h.get('threshold', 0):.3f}"
                  f"  overlap={h.get('overlap', 0)}", file=out)
    if d.get("violating_tags"):
        print(f"  violating tags  {', '.join(d['violating_tags'])}", file=out)
    if d.get("labels_consulted"):
        print(f"  labels consulted  {', '.join(d['labels_consulted'])}",
              file=out)
    if d.get("secret_hits"):
        print(f"  secret scanner  {', '.join(d['secret_hits'])}", file=out)

    retry = d.get("retry", {})
    if retry.get("attempts", 0) > 1 or retry.get("exhausted"):
        exhausted = "  EXHAUSTED" if retry.get("exhausted") else ""
        print(f"  transport  {retry.get('attempts')} attempts,"
              f" {retry.get('backoff_ms', 0.0):.1f} ms backoff{exhausted}",
              file=out)
    print(file=out)


def main() -> int:
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("input", help="bf-flight-v1 JSON file, or '-' for stdin")
    ap.add_argument("--decision", type=int,
                    help="only the record with this decision id")
    ap.add_argument("--trace",
                    help="only records of this trace id (hex 0x... or decimal)")
    args = ap.parse_args()

    text = sys.stdin.read() if args.input == "-" else open(args.input).read()
    data = json.loads(text)
    if data.get("schema") != "bf-flight-v1":
        print(f"bf_explain: unexpected schema {data.get('schema')!r} "
              "(want bf-flight-v1)", file=sys.stderr)
        return 1

    decisions = data.get("decisions", [])
    if args.decision is not None:
        decisions = [d for d in decisions
                     if d.get("decision_id") == args.decision]
        if not decisions:
            print(f"bf_explain: decision {args.decision} not in the ring "
                  "(evicted, never retained, or wrong file)", file=sys.stderr)
            return 1
    if args.trace is not None:
        want = parse_trace_id(args.trace)
        decisions = [d for d in decisions if d.get("trace_id") == want]
        if not decisions:
            print(f"bf_explain: no records for trace {args.trace}",
                  file=sys.stderr)
            return 1

    for d in decisions:
        explain_decision(d, sys.stdout)
    print(f"{len(decisions)} decision(s) shown, "
          f"{len(data.get('decisions', []))} retained in the ring")
    return 0


if __name__ == "__main__":
    sys.exit(main())
