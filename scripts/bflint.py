#!/usr/bin/env python3
"""bflint -- BrowserFlow's project lint.

Fast, dependency-free checks for project invariants that the compiler
cannot enforce:

  raw-mutex           std::mutex / std::lock_guard / std::scoped_lock /
                      std::condition_variable outside src/util. Concurrency
                      primitives must go through bf::util::Mutex (ranked,
                      annotated; see src/util/mutex.h). std::unique_lock is
                      allowed: it is the handle type for util::Mutex's
                      lockState()-style APIs.
  wall-clock          Non-deterministic time / randomness outside
                      src/util/clock.* and src/util/rng.*: system_clock,
                      std::time, gettimeofday, clock_gettime, rand/srand,
                      and every sleep variant. The simulation is
                      deterministic; steady_clock (monotonic, measurement
                      only) is explicitly allowed.
  raw-timing          Direct TraceLog::instance() or raw std::chrono timing
                      inside src/core or src/flow. The decision pipeline
                      reports time through obs (StageTimer / recordStage on
                      util::fastTicks) and spans through obs::ScopedSpan, so
                      per-stage attribution and trace propagation cannot be
                      bypassed; src/obs and src/util/clock.h own the raw
                      clocks.
  deque-scratch       std::deque inside src/text. The fingerprint kernel is
                      the hottest loop in the system; its scratch structures
                      are flat rings/vectors in a reusable workspace
                      (text/fingerprint_kernel.h). A deque's chunked nodes
                      reintroduce pointer-chasing and per-call allocation.
  state-file-io       Direct file I/O (std::ofstream / std::ifstream /
                      std::fstream, bare ::open/::write/::fsync syscalls,
                      opendir/mkdir, std::rename/std::remove) anywhere in
                      src/flow. ALL durable-state I/O flows through the
                      bf::io VFS seam (src/io/vfs.h): snapshot.cpp and
                      wal.cpp take an io::Vfs, which is what lets the
                      storage-chaos suites inject ENOSPC / torn writes /
                      fsync failures. A direct stream or syscall would
                      bypass both the seam and the framing that makes
                      crash recovery trustworthy.
  missing-pragma-once Headers must use `#pragma once`.
  include-hygiene     No `#include "../..."` / `#include "./..."` path
                      escapes, no <bits/...> internals, and every quoted
                      project include must resolve against src/ (or the
                      including file's own directory, for bench/ helpers).

Usage:
  scripts/bflint.py [root ...]      # lint trees/files (default: src)
  scripts/bflint.py --selftest      # run the rule fixtures in tests/lint
  scripts/bflint.py --json ...      # machine-readable findings

Exit status: 0 when clean, 1 when any rule fires (or a selftest
expectation is not met). Findings print as `path:line: [rule] message`.
"""

from __future__ import annotations

import json
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SOURCE_EXTENSIONS = (".h", ".hpp", ".cc", ".cpp")

# Paths (relative, '/'-separated) exempt from a rule.
RAW_MUTEX_ALLOWED_PREFIXES = ("src/util/",)
WALL_CLOCK_ALLOWED = (
    "src/util/clock.h",
    "src/util/clock.cpp",
    "src/util/rng.h",
    "src/util/rng.cpp",
)

RAW_MUTEX_PATTERNS = [
    (re.compile(r"\bstd::(recursive_|shared_|timed_|recursive_timed_)?mutex\b"),
     "raw std::mutex family; use bf::util::Mutex (ranked + annotated)"),
    (re.compile(r"\bstd::lock_guard\b"),
     "std::lock_guard; use bf::util::MutexLock"),
    (re.compile(r"\bstd::scoped_lock\b"),
     "std::scoped_lock; use bf::util::MutexLock"),
    (re.compile(r"\bstd::condition_variable(_any)?\b"),
     "std::condition_variable; use bf::util::CondVar"),
]

WALL_CLOCK_PATTERNS = [
    (re.compile(r"\bsystem_clock\b"),
     "wall-clock time; use util::Clock (or steady_clock for measurement)"),
    (re.compile(r"\bstd::time\b|\btime\s*\(\s*(NULL|nullptr|0)\s*\)"),
     "std::time; use util::Clock"),
    (re.compile(r"\b(gettimeofday|clock_gettime)\s*\("),
     "raw OS clock; use util::Clock"),
    (re.compile(r"\bs?rand\s*\("),
     "libc rand; use the seeded util::Rng"),
    (re.compile(r"\b(sleep|usleep|nanosleep)\s*\(|\bsleep_(for|until)\b"),
     "sleeping; simulate delays (SimNetwork latency model) instead"),
]

RAW_TIMING_PATTERNS = [
    (re.compile(r"\bTraceLog\s*::\s*instance\b"),
     "direct TraceLog access in the pipeline; emit spans via obs::ScopedSpan "
     "so they parent-link to the ambient trace"),
    (re.compile(r"\bstd\s*::\s*chrono\b|#\s*include\s*<chrono>"),
     "raw std::chrono timing in the pipeline; use obs::StageTimer / "
     "obs::recordStage (util::fastTicks) so the time is attributed to a "
     "stage histogram and the flight recorder"),
]

DEQUE_PATTERNS = [
    (re.compile(r"\bstd::deque\b|#\s*include\s*<deque>"),
     "std::deque in the text hot path; use a flat ring buffer in "
     "FingerprintWorkspace (text/fingerprint_kernel.h)"),
]

# Empty since the bf::io VFS seam landed: snapshot.cpp and wal.cpp now do
# all their I/O through io::Vfs, so no file in src/flow is exempt.
STATE_FILE_IO_ALLOWED = ()

STATE_FILE_IO_PATTERNS = [
    (re.compile(r"\bstd::(ofstream|ifstream|fstream)\b"),
     "direct state-file stream; route file I/O through the bf::io VFS seam "
     "(src/io/vfs.h) so the storage-chaos suites can inject faults"),
    (re.compile(r"\bstd::(rename|remove)\s*\("),
     "direct filesystem mutation; use io::Vfs::rename / io::Vfs::remove "
     "(src/io/vfs.h)"),
    # Bare global-namespace POSIX calls (`::open(...)`). The negative
    # char class keeps `WriteAheadLog::open(` method definitions/calls
    # from matching: those have an identifier before the `::`.
    (re.compile(r"(^|[^\w)])::(open|openat|creat|write|pwrite|read|pread|"
                r"fsync|fdatasync|unlink|rename|mkdir|ftruncate)\s*\("),
     "raw POSIX file syscall; route file I/O through the bf::io VFS seam "
     "(src/io/vfs.h)"),
    (re.compile(r"\b(opendir|readdir|closedir|fopen|fwrite|fread)\s*\("),
     "raw libc file I/O; use io::Vfs (listDir/open*) from src/io/vfs.h"),
]

# Raw SIMD intrinsics live ONLY behind the runtime dispatcher
# (src/text/simd/, see text/simd/kernel.h) or crc32c's existing SSE4.2
# dispatch — everywhere else they bypass cpuid gating and the scalar
# fallback contract.
SIMD_INTRINSICS_ALLOWED_PREFIXES = ("src/text/simd/",)
SIMD_INTRINSICS_ALLOWED = ("src/util/crc32c.cpp",)

SIMD_INTRINSICS_PATTERNS = [
    (re.compile(r"\b_mm(?:256|512)?_\w+"),
     "raw SIMD intrinsic outside src/text/simd/ (or util/crc32c.cpp); "
     "implement it as a kernel behind the runtime dispatcher "
     "(text/simd/kernel.h) so cpuid gating, BF_FORCE_SCALAR_KERNEL, and "
     "the scalar fallback stay enforceable"),
]

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+(["<])([^">]+)[">]')

_STRIP_RE = re.compile(
    r'//[^\n]*'               # line comment
    r'|/\*.*?\*/'             # block comment
    r'|"(?:\\.|[^"\\\n])*"'   # string literal
    r"|'(?:\\.|[^'\\\n])*'",  # char literal
    re.DOTALL,
)


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments/strings, preserving newlines so line numbers hold."""
    def blank(match: re.Match) -> str:
        return re.sub(r"[^\n]", " ", match.group(0))

    return _STRIP_RE.sub(blank, text)


def relpath(path: str) -> str:
    return os.path.relpath(os.path.abspath(path), REPO_ROOT).replace(os.sep, "/")


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path, self.line, self.rule, self.message = path, line, rule, message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def to_json(self) -> dict:
        return {"file": self.path, "line": self.line, "rule": self.rule,
                "severity": "error", "message": self.message}


def lint_file(path: str, fixture_mode: bool = False) -> list[Finding]:
    rel = relpath(path)
    with open(path, encoding="utf-8", errors="replace") as f:
        raw = f.read()
    code = strip_comments_and_strings(raw)
    lines = code.splitlines()
    findings: list[Finding] = []

    def scan(patterns, rule: str, allowed: bool) -> None:
        if allowed:
            return
        for i, line in enumerate(lines, start=1):
            for pattern, message in patterns:
                if pattern.search(line):
                    findings.append(Finding(rel, i, rule, message))

    scan(RAW_MUTEX_PATTERNS, "raw-mutex",
         not fixture_mode and rel.startswith(RAW_MUTEX_ALLOWED_PREFIXES))
    scan(WALL_CLOCK_PATTERNS, "wall-clock",
         not fixture_mode and rel in WALL_CLOCK_ALLOWED)
    scan(RAW_TIMING_PATTERNS, "raw-timing",
         not fixture_mode and not rel.startswith(("src/core/", "src/flow/")))
    scan(DEQUE_PATTERNS, "deque-scratch",
         not fixture_mode and not rel.startswith("src/text/"))
    scan(SIMD_INTRINSICS_PATTERNS, "simd-intrinsics",
         not fixture_mode and
         (rel.startswith(SIMD_INTRINSICS_ALLOWED_PREFIXES) or
          rel in SIMD_INTRINSICS_ALLOWED))
    scan(STATE_FILE_IO_PATTERNS, "state-file-io",
         not fixture_mode and (not rel.startswith("src/flow/") or
                               rel in STATE_FILE_IO_ALLOWED))

    if path.endswith((".h", ".hpp")) and not re.search(
            r"^\s*#\s*pragma\s+once\b", code, re.MULTILINE):
        findings.append(Finding(rel, 1, "missing-pragma-once",
                                "header lacks #pragma once"))

    src_root = os.path.join(REPO_ROOT, "src")
    for i, line in enumerate(raw.splitlines(), start=1):
        m = INCLUDE_RE.match(line)
        if m is None:
            continue
        quote, target = m.groups()
        if target.startswith(("../", "./")):
            findings.append(Finding(rel, i, "include-hygiene",
                                    f'relative include "{target}"; include '
                                    "project headers by src/-rooted path"))
            continue
        if quote == "<":
            if target.startswith("bits/"):
                findings.append(Finding(
                    rel, i, "include-hygiene",
                    f"<{target}> is a libstdc++ internal; include the "
                    "standard header instead"))
            continue
        candidates = [os.path.join(src_root, target),
                      os.path.join(os.path.dirname(path), target)]
        if not any(os.path.exists(c) for c in candidates):
            findings.append(Finding(rel, i, "include-hygiene",
                                    f'"{target}" resolves against neither '
                                    "src/ nor the including directory"))

    return findings


def collect_sources(roots: list[str]) -> list[str]:
    out: list[str] = []
    for root in roots:
        if os.path.isfile(root):
            out.append(root)
            continue
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = sorted(d for d in dirnames if not d.startswith("."))
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTENSIONS):
                    out.append(os.path.join(dirpath, name))
    return out


EXPECT_RE = re.compile(r"//\s*bflint-expect:\s*([a-z0-9-]+(?:\s*,\s*[a-z0-9-]+)*)")


def selftest() -> int:
    """Every tests/lint fixture must trigger exactly its declared rules."""
    fixture_dir = os.path.join(REPO_ROOT, "tests", "lint")
    fixtures = collect_sources([fixture_dir])
    if not fixtures:
        print(f"bflint: no fixtures under {fixture_dir}", file=sys.stderr)
        return 1
    failures = 0
    for path in fixtures:
        with open(path, encoding="utf-8") as f:
            raw = f.read()
        expected: set[str] = set()
        for m in EXPECT_RE.finditer(raw):
            expected.update(r.strip() for r in m.group(1).split(","))
        got = {f.rule for f in lint_file(path, fixture_mode=True)}
        if got != expected:
            failures += 1
            print(f"selftest FAIL {relpath(path)}: expected "
                  f"{sorted(expected) or '[]'}, got {sorted(got) or '[]'}")
        else:
            print(f"selftest ok   {relpath(path)}: {sorted(got) or 'clean'}")
    if failures:
        print(f"bflint selftest: {failures} fixture(s) failed")
        return 1
    print(f"bflint selftest: {len(fixtures)} fixtures ok")
    return 0


def main(argv: list[str]) -> int:
    if "--selftest" in argv:
        return selftest()
    as_json = "--json" in argv
    roots = [a for a in argv if a != "--json"]
    roots = roots or [os.path.join(REPO_ROOT, "src")]
    findings: list[Finding] = []
    files = collect_sources(roots)
    for path in files:
        findings.extend(lint_file(path))
    if as_json:
        print(json.dumps({"tool": "bflint",
                          "files": len(files),
                          "findings": [f.to_json() for f in findings]},
                         indent=2))
        return 1 if findings else 0
    for finding in findings:
        print(finding)
    if findings:
        print(f"bflint: {len(findings)} finding(s) in {len(files)} files")
        return 1
    print(f"bflint: clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
