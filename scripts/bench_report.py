#!/usr/bin/env python3
"""Run the bench suite and write a machine-readable trajectory file.

Produces BENCH_PR4.json: per-bench throughput / latency series plus the
peak RSS of each bench process, so performance PRs carry their numbers in
the repo instead of in prose. Two result channels are understood:

  * google-benchmark JSON (--benchmark_format=json) for the micro benches;
  * "RESULT {...json...}" lines on stdout for the figure/stress harnesses
    (see bench::result in bench/bench_util.h).

Usage:
    scripts/bench_report.py [--build-dir build] [--out BENCH_PR4.json]
                            [--baseline before.json] [--quick]

--baseline merges a previous report under the "baseline" key so the file
records the before/after pair. --quick trims iteration counts (used by
scripts/check.sh when BF_CHECK_BENCH=1) — numbers are noisier but the
wiring is exercised end to end.
"""

import argparse
import json
import os
import resource
import subprocess
import sys
import time


def run_child(cmd, env=None):
    """Runs `cmd`, returning (stdout, wall_seconds, peak_rss_bytes).

    Peak RSS comes from os.wait4's rusage (ru_maxrss is KiB on Linux), so
    it measures the bench process itself, not this script.
    """
    full_env = dict(os.environ)
    if env:
        full_env.update(env)
    start = time.monotonic()
    proc = subprocess.Popen(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, env=full_env
    )
    out = proc.stdout.read().decode("utf-8", "replace")
    _, status, rusage = os.wait4(proc.pid, 0)
    wall = time.monotonic() - start
    if status != 0:
        sys.stderr.write(out)
        raise RuntimeError(f"{cmd[0]} exited with status {status}")
    return out, wall, rusage.ru_maxrss * 1024


def parse_result_lines(stdout):
    """Extracts the `RESULT {...}` objects a bench printed."""
    results = []
    for line in stdout.splitlines():
        if line.startswith("RESULT "):
            try:
                results.append(json.loads(line[len("RESULT "):]))
            except json.JSONDecodeError:
                sys.stderr.write(f"unparseable RESULT line: {line}\n")
    return results


def run_micro(build_dir, quick):
    """bench_micro_fingerprint via google-benchmark's JSON reporter.

    Full (non-quick) runs take the best of 3 invocations per benchmark —
    highest throughput, lowest times — the same least-interference
    estimator run_results_bench applies to the stress benches: on a
    loaded single-core host a lone google-benchmark mean swings with
    scheduler luck, which a kernel-speedup gate would otherwise inherit.
    """
    binary = os.path.join(build_dir, "bench", "bench_micro_fingerprint")
    cmd = [binary, "--benchmark_format=json"]
    if quick:
        cmd.append(
            "--benchmark_filter=BM_Fingerprint(Text|TextReference|"
            "TextFusedWorkspace)/16384"
        )
    best = {}
    order = []
    wall_total = 0.0
    rss_peak = 0
    context = {}
    for _ in range(1 if quick else 3):
        out, wall, rss = run_child(cmd)
        wall_total += wall
        rss_peak = max(rss_peak, rss)
        data = json.loads(out)
        context = data.get("context", {})
        for b in data.get("benchmarks", []):
            entry = {
                "name": b["name"],
                "real_time_ns": b.get("real_time"),
                "cpu_time_ns": b.get("cpu_time"),
            }
            if "bytes_per_second" in b:
                entry["mb_per_s"] = b["bytes_per_second"] / 1e6
            prev = best.get(b["name"])
            if prev is None:
                best[b["name"]] = entry
                order.append(b["name"])
            else:
                for field in ("real_time_ns", "cpu_time_ns"):
                    if prev.get(field) and entry.get(field):
                        prev[field] = min(prev[field], entry[field])
                if "mb_per_s" in prev and "mb_per_s" in entry:
                    prev["mb_per_s"] = max(prev["mb_per_s"],
                                           entry["mb_per_s"])
    return {
        "benchmarks": [best[name] for name in order],
        "wall_s": round(wall_total, 2),
        "peak_rss_bytes": rss_peak,
        "context": {
            k: context.get(k)
            for k in ("num_cpus", "mhz_per_cpu", "library_build_type")
        },
    }


def run_results_bench(binary, env, quick_env, repeats=1):
    """Runs a RESULT-line bench, optionally `repeats` times.

    With repeats > 1 the runs are merged per metric: throughput-style
    numbers (queries_per_s, decisions_per_s, goodput_per_s) keep their
    MAX across runs, measured-overhead percentages keep their MIN — the
    least-interference estimate of what the machine can actually do.
    On a single-core container a lone sample swings ±30% with scheduler
    luck; best-of-N is the same noise-control philosophy as the
    provenance phase's interleaved min-estimator, one level up.
    """
    runs = []
    for _ in range(max(1, repeats)):
        out, wall, rss = run_child([binary], env={**env, **quick_env})
        runs.append((parse_result_lines(out), wall, rss))
    merged = runs[0][0]
    for results, _, _ in runs[1:]:
        by_key = {
            (r.get("bench"), r.get("mode"), r.get("readers"),
             r.get("users"), r.get("rate")): r
            for r in results
        }
        for m in merged:
            r = by_key.get((m.get("bench"), m.get("mode"), m.get("readers"),
                            m.get("users"), m.get("rate")))
            if r is None:
                continue
            for field in ("queries_per_s", "decisions_per_s",
                          "goodput_per_s", "observes_per_s"):
                if field in m and field in r:
                    m[field] = max(m[field], r[field])
            if "overhead_pct" in m and "overhead_pct" in r:
                m["overhead_pct"] = min(m["overhead_pct"], r["overhead_pct"])
    return {
        "results": merged,
        "wall_s": round(sum(w for _, w, _ in runs), 2),
        "peak_rss_bytes": max(r for _, _, r in runs),
        "repeats": len(runs),
    }


def summarize(report):
    """Derives the headline comparisons the PR's acceptance criteria name."""
    summary = {}
    micro = {
        b["name"]: b
        for b in report.get("micro_fingerprint", {}).get("benchmarks", [])
    }
    ref = micro.get("BM_FingerprintTextReference/16384")
    fused = micro.get("BM_FingerprintTextFusedWorkspace/16384")
    if ref and fused and fused.get("mb_per_s"):
        summary["fingerprint_speedup_vs_reference_16k"] = round(
            fused["mb_per_s"] / ref["mb_per_s"], 2
        )
    readers = [
        r
        for r in report.get("stress_concurrency", {}).get("results", [])
        if r.get("bench") == "multi_reader"
    ]
    if readers:
        summary["multi_reader"] = {
            f"{r['mode']}_r{r['readers']}": round(r["queries_per_s"])
            for r in readers
        }
        summary["hw_cores"] = readers[0].get("hw_cores")
    faults = [
        r
        for r in report.get("recovery", {}).get("results", [])
        if r.get("bench") == "durability_faults"
    ]
    if faults:
        # Goodput vs injected-fault rate: shows what the self-healing WAL
        # costs under storage pressure (rate 0 = inert FaultVfs control).
        summary["durability_faults"] = {
            f"rate_{r['rate']:g}": {
                "goodput_per_s": round(r["goodput_per_s"]),
                "records_lost": r["records_lost"],
                "repairs": r["repairs"],
            }
            for r in faults
        }
    return summary


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--out", default="BENCH_PR4.json")
    ap.add_argument("--baseline", help="previous report to embed for before/after")
    ap.add_argument("--quick", action="store_true",
                    help="reduced iteration counts (check.sh wiring test)")
    ap.add_argument("--skip", default="",
                    help="comma-separated benches to skip "
                         "(micro,fig13,stress,recovery)")
    ap.add_argument("--stress-repeats", type=int, default=1,
                    help="run the stress bench N times and keep the "
                         "per-metric best (noise control on loaded hosts)")
    args = ap.parse_args()

    skip = {s for s in args.skip.split(",") if s}
    report = {
        "schema": "bf-bench-report-v1",
        "generated_by": "scripts/bench_report.py",
        "build_dir": args.build_dir,
    }

    if "micro" not in skip:
        print("==> bench_micro_fingerprint", flush=True)
        report["micro_fingerprint"] = run_micro(args.build_dir, args.quick)

    if "fig13" not in skip:
        print("==> bench_fig13_scalability", flush=True)
        quick_env = {"BF_SCALE": "quick"} if args.quick else {}
        report["fig13_scalability"] = run_results_bench(
            os.path.join(args.build_dir, "bench", "bench_fig13_scalability"),
            {}, quick_env)

    if "stress" not in skip:
        print("==> bench_stress_concurrency", flush=True)
        quick_env = (
            {"BF_STRESS_USERS": "4", "BF_STRESS_DECISIONS": "200"}
            if args.quick else {}
        )
        report["stress_concurrency"] = run_results_bench(
            os.path.join(args.build_dir, "bench", "bench_stress_concurrency"),
            {}, quick_env, repeats=args.stress_repeats)

    if "recovery" not in skip:
        print("==> bench_recovery", flush=True)
        quick_env = {"BF_RECOVERY_SEGMENTS": "500"} if args.quick else {}
        report["recovery"] = run_results_bench(
            os.path.join(args.build_dir, "bench", "bench_recovery"),
            {}, quick_env)

    report["summary"] = summarize(report)

    if args.baseline:
        with open(args.baseline) as f:
            report["baseline"] = json.load(f)

    with open(args.out, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"==> wrote {args.out}")
    if report["summary"]:
        print(json.dumps(report["summary"], indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
