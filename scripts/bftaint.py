#!/usr/bin/env python3
"""bftaint -- BrowserFlow's sensitivity data-flow lint.

The sec type layer (src/sec/sensitive.h) makes it a COMPILE error to pass
a SensitiveText/SensitiveView where a std::string / std::string_view is
expected, so raw document content cannot reach a log, metric, audit or
wire sink by accident. The deliberate escape hatch is `.raw()`, which the
pipeline internals need (fingerprint kernels, normalizers). This lint
closes the loop: it tracks every value derived from `.raw()` (or from a
Sensitive-returning function) THROUGH assignments, aliases, concatenation
and local helper calls, and fails the build when such a value reaches a
sink that leaves the process:

  sinks   BF_LOG streams, obs span attributes (addAttr), printf/fprintf/
          puts and std::cout/std::cerr/std::clog streams, audit appends
          (audit().append / AuditRecord{...}), flight-recorder previews
          (.contentPreview =), and cloud transport payload setters
          (.body =, .payload =, setBody().

  gates   named declassifiers whose OUTPUT is safe by construction:
          sec::redact (edge chars + length), sec::contentHash /
          util::fnv1a64 (one-way hash), fingerprintText /
          fingerprintTextReference / fingerprintOf (winnowed hash sets),
          Sealer::seal (ciphertext), sec::declassifyForTest (test-only;
          compiled out of production), plus the scalar observers
          .size() / .length() / .empty().

  NOT gates  text::normalize and segmentParagraphs: their output is still
          readable content, so taint flows through them.

The analysis is lexical and intra-TU (the toolchain here has no clang),
statement-level to a fixpoint, with per-function summaries so a local
helper that forwards its argument to a sink taints its call sites. That
makes it deliberately imprecise in the safe direction for aliases it can
see, and silent about flows it cannot (pointer indirection, cross-TU
calls) — those are covered by the type layer itself.

Usage:
  scripts/bftaint.py [root ...]      # analyze trees/files (default: src)
  scripts/bftaint.py --selftest      # run fixtures in tests/lint/taint
  scripts/bftaint.py --json ...      # machine-readable findings
  scripts/bftaint.py --compdb build/compile_commands.json
                                     # analyze the TUs of a compilation db

Exit status: 0 when clean, 1 when any flow fires (or a selftest
expectation is unmet). Findings print as `path:line: [rule] message`.
"""

from __future__ import annotations

import json
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SOURCE_EXTENSIONS = (".h", ".hpp", ".cc", ".cpp")

RULE = "taint-to-sink"

# Calls that cleanse taint: the value they RETURN is safe to emit.
GATE_CALLS = (
    "redact",
    "contentHash",
    "declassifyForTest",
    "fingerprintText",
    "fingerprintTextReference",
    "fingerprintOf",
    "seal",
    "fnv1a64",
)

# Method calls on a tainted value that yield a harmless scalar.
SCALAR_METHODS = ("size", "length", "empty")

# Functions returning sensitive values: calls to these produce taint even
# without a visible `.raw()`.
TAINT_RETURNING = (
    "declassifyForTest",  # only safe inside tests; in src/bench tools we
                          # still treat its result as content
)

# A statement containing one of these sinks must not also carry taint.
SINK_PATTERNS = [
    (re.compile(r"\bBF_LOG\s*\("), "BF_LOG stream"),
    (re.compile(r"\.\s*addAttr\s*\("), "span attribute"),
    (re.compile(r"\b(?:std\s*::\s*)?(?:printf|fprintf|puts|fputs)\s*\("),
     "stdio output"),
    (re.compile(r"\bstd\s*::\s*(?:cout|cerr|clog)\b"), "std stream"),
    (re.compile(r"\baudit\s*\(\s*\)\s*\.\s*append\s*\("), "audit record"),
    (re.compile(r"\bAuditRecord\s*\{"), "audit record literal"),
    (re.compile(r"\.\s*contentPreview\s*="), "flight-recorder preview"),
    (re.compile(r"\.\s*(?:body|payload)\s*=|\.\s*setBody\s*\("),
     "wire payload"),
]

IDENT = r"[A-Za-z_]\w*"

_STRIP_RE = re.compile(
    r"//[^\n]*"
    r"|/\*.*?\*/"
    r'|"(?:\\.|[^"\\\n])*"'
    r"|'(?:\\.|[^'\\\n])*'",
    re.DOTALL,
)


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments/strings, preserving newlines so line numbers hold."""
    def blank(match: re.Match) -> str:
        return re.sub(r"[^\n]", " ", match.group(0))

    return _STRIP_RE.sub(blank, text)


def relpath(path: str) -> str:
    return os.path.relpath(os.path.abspath(path), REPO_ROOT).replace(
        os.sep, "/")


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str,
                 severity: str = "error"):
        self.path, self.line, self.rule = path, line, rule
        self.message, self.severity = message, severity

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def to_json(self) -> dict:
        return {"file": self.path, "line": self.line, "rule": self.rule,
                "severity": self.severity, "message": self.message}


# ---- expression-level taint ------------------------------------------------

_GATE_CALL_RE = re.compile(
    r"(?:\b\w+\s*::\s*)*\b(?:" + "|".join(GATE_CALLS) + r")\s*\(")
_SCALAR_RE = re.compile(
    r"\.\s*(?:" + "|".join(SCALAR_METHODS) + r")\s*\(\s*\)")
_RAW_RE = re.compile(r"\.\s*raw\s*\(\s*\)")


def _erase_balanced(text: str, open_idx: int) -> str:
    """Blanks from the '(' at open_idx through its matching ')'."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return text[:open_idx] + " " * (i + 1 - open_idx) + text[i + 1:]
    return text[:open_idx] + " " * (len(text) - open_idx)


def neutralize_gates(expr: str) -> str:
    """Removes gate calls (with their arguments) and scalar observers.

    Whatever taint sat inside a redact(...) / contentHash(...) / .size()
    has been declassified; the remainder is what must still be judged.
    """
    while True:
        m = _GATE_CALL_RE.search(expr)
        if m is None:
            break
        open_idx = expr.index("(", m.start())
        expr = expr[:m.start()] + " " * (open_idx - m.start()) + \
            expr[m.start():]
        expr = _erase_balanced(expr, open_idx)
    # `x.size()` neutralizes the whole chain ending in the scalar: blank the
    # receiver identifier/chain immediately before it too.
    while True:
        m = _SCALAR_RE.search(expr)
        if m is None:
            break
        start = m.start()
        i = start
        while i > 0 and (expr[i - 1].isalnum() or expr[i - 1] in "_]).:"):
            i -= 1
        expr = expr[:i] + " " * (m.end() - i) + expr[m.end():]
    return expr


def expr_is_tainted(expr: str, tainted: set[str],
                    taint_fns: set[str]) -> bool:
    expr = neutralize_gates(expr)
    if _RAW_RE.search(expr):
        # .raw() only exists on sec::SensitiveText/View: any surviving use
        # is sensitive content escaping the wrapper.
        return True
    for ident in re.findall(IDENT, expr):
        if ident in tainted:
            return True
    for fn in taint_fns:
        if re.search(r"\b" + re.escape(fn) + r"\s*\(", expr):
            return True
    return False


# ---- function extraction ----------------------------------------------------

_FN_HEADER_DISALLOW = re.compile(
    r"^\s*(?:namespace|struct|class|enum|union|if|for|while|switch|catch|"
    r"do|else|try)\b")

_SENSITIVE_PARAM_RE = re.compile(
    r"(?:\bsec\s*::\s*)?\bSensitive(?:Text|View)\b[^,()]*?\b(" + IDENT +
    r")\s*(?:,|\)|=)")

_SENSITIVE_DECL_RE = re.compile(
    r"(?:\bsec\s*::\s*)?\bSensitive(?:Text|View)\b(?:\s*[&*]|\s)\s*(" +
    IDENT + r")\b")

_FN_NAME_RE = re.compile(r"\b(" + IDENT + r")\s*\($")


class Function:
    def __init__(self, name: str, header: str, body: str, line: int,
                 params: list[str]):
        self.name = name
        self.header = header
        self.body = body
        self.line = line          # 1-based line of the opening brace
        self.params = params      # parameter names, in order


def extract_functions(code: str) -> list[Function]:
    """Finds top-level-ish function bodies by brace matching.

    Nested lambdas stay part of the enclosing body on purpose: their
    captures alias the enclosing scope, which is exactly what the taint
    set models.
    """
    functions: list[Function] = []
    i, n = 0, len(code)
    depth_openers: list[str] = []  # what each open brace belonged to
    while i < n:
        ch = code[i]
        if ch != "{":
            i += 1
            continue
        # Header: text since the previous ; { or } at this nesting level.
        j = i - 1
        while j >= 0 and code[j] not in ";{}":
            j -= 1
        header = code[j + 1:i].strip()
        is_fn = (
            "(" in header and ")" in header
            and not _FN_HEADER_DISALLOW.match(header)
            and not header.rstrip().endswith(("=", ","))
            and not re.search(r"\breturn\b", header)
        )
        if not is_fn:
            i += 1
            continue
        # Find the matching close brace.
        depth = 0
        k = i
        while k < n:
            if code[k] == "{":
                depth += 1
            elif code[k] == "}":
                depth -= 1
                if depth == 0:
                    break
            k += 1
        body = code[i + 1:k]
        line = code.count("\n", 0, i) + 1
        paren = header.rfind("(")
        name_m = re.search(r"\b(" + IDENT + r")\s*$",
                           header[:paren].replace("::", " "))
        name = name_m.group(1) if name_m else "<anon>"
        params = []
        for pm in re.finditer(r"[(,]\s*([^,()]+?)\s*(?=[,)])",
                              header[paren:] if paren >= 0 else ""):
            words = re.findall(IDENT, pm.group(1))
            if len(words) >= 2:   # "type name" at minimum
                params.append(words[-1])
        functions.append(Function(name, header, body, line, params))
        i = k + 1
    return functions


# ---- per-function analysis ---------------------------------------------------

_ASSIGN_RE = re.compile(
    r"(?:^|[;{}]|\bfor\s*\()\s*"
    r"(?:[\w:<>,&*\s]+?\s)?"          # optional decl type
    r"[&*]?(" + IDENT + r")\s*"
    r"(?:=(?!=)|\+=)\s*(.+)", re.DOTALL)

_RANGE_FOR_RE = re.compile(
    r"for\s*\(\s*[\w:<>,&*\s]+?\b(" + IDENT + r")\s*:\s*([^)]+)\)")


def split_statements(body: str, base_line: int) -> list[tuple[int, str]]:
    """Splits on ; { } while tracking line numbers."""
    out: list[tuple[int, str]] = []
    start = 0
    line = base_line
    start_line = line
    for i, ch in enumerate(body):
        if ch == "\n":
            line += 1
        if ch in ";{}":
            stmt = body[start:i].strip()
            if stmt:
                out.append((start_line, stmt))
            start = i + 1
            start_line = line
    stmt = body[start:].strip()
    if stmt:
        out.append((start_line, stmt))
    return out


def analyze_function(fn: Function, taint_fns: set[str],
                     sink_fns: set[str], rel: str) -> tuple[list[Finding],
                                                            bool, bool]:
    """Returns (findings, any_param_reaches_sink, returns_taint)."""
    tainted: set[str] = set()
    for m in _SENSITIVE_PARAM_RE.finditer(fn.header):
        tainted.add(m.group(1))
    # Parameter-origin names: used for the summary (param -> sink).
    param_seed = set(tainted)
    # Conservative: when computing summaries we also treat ALL parameters
    # of plain string type as potential taint carriers (a helper like
    # logIt(const std::string&) called with doc.raw() leaks).
    carrier_params = set(fn.params)

    statements = split_statements(fn.body, fn.line)

    def run(seed: set[str]) -> tuple[set[str], list[tuple[int, str, str]]]:
        taint = set(seed)
        hits: list[tuple[int, str, str]] = []
        changed = True
        while changed:
            changed = False
            for _line, stmt in statements:
                for m in _SENSITIVE_DECL_RE.finditer(stmt):
                    if m.group(1) not in taint:
                        taint.add(m.group(1))
                        changed = True
                m = _RANGE_FOR_RE.search(stmt)
                if m and expr_is_tainted(m.group(2), taint, taint_fns):
                    if m.group(1) not in taint:
                        taint.add(m.group(1))
                        changed = True
                m = _ASSIGN_RE.search(stmt)
                if m and expr_is_tainted(m.group(2), taint, taint_fns):
                    if m.group(1) not in taint:
                        taint.add(m.group(1))
                        changed = True
        for line, stmt in statements:
            for pattern, what in SINK_PATTERNS:
                if pattern.search(stmt) and expr_is_tainted(
                        stmt, taint, taint_fns):
                    hits.append((line, what, stmt))
                    break
            else:
                for sfn in sink_fns:
                    if re.search(r"\b" + re.escape(sfn) + r"\s*\(", stmt) \
                            and expr_is_tainted(stmt, taint, taint_fns):
                        hits.append((line, f"call to sink helper {sfn}()",
                                     stmt))
                        break
        return taint, hits

    _, hits = run(tainted)
    findings = [
        Finding(rel, line,
                RULE,
                f"sensitive data reaches {what} in {fn.name}(); emit "
                "sec::redact()/contentHash()/fingerprint forms instead")
        for line, what, _stmt in hits
    ]

    # Summary: would taint injected via ANY parameter reach a sink?
    param_reaches_sink = False
    if carrier_params:
        _, param_hits = run(param_seed | carrier_params)
        # Only count hits beyond the ones the function already has on its
        # own — those are reported directly above.
        param_reaches_sink = len(param_hits) > len(hits)

    returns_taint = bool(re.search(
        r"(?:\bsec\s*::\s*)?\bSensitive(?:Text|View)\b[^;{(]*$",
        fn.header[:fn.header.rfind("(")])) if "(" in fn.header else False
    return findings, param_reaches_sink, returns_taint


def analyze_file(path: str) -> list[Finding]:
    rel = relpath(path)
    with open(path, encoding="utf-8", errors="replace") as f:
        raw = f.read()
    code = strip_comments_and_strings(raw)
    functions = extract_functions(code)

    taint_fns: set[str] = set(TAINT_RETURNING)
    # Functions declared to return Sensitive values taint their call sites.
    for m in re.finditer(
            r"(?:\bsec\s*::\s*)?\bSensitive(?:Text|View)\b[&\s]+(?:\w+\s*::\s*)?"
            r"(" + IDENT + r")\s*\(", code):
        taint_fns.add(m.group(1))

    # Fixpoint over function summaries: a helper whose parameter reaches a
    # sink becomes a sink itself at its call sites.
    sink_fns: set[str] = set()
    findings: list[Finding] = []
    for _round in range(4):
        findings = []
        new_sinks = set(sink_fns)
        for fn in functions:
            fn_findings, param_leaks, _ = analyze_function(
                fn, taint_fns, sink_fns, rel)
            findings.extend(fn_findings)
            if param_leaks and fn.name != "<anon>":
                new_sinks.add(fn.name)
        if new_sinks == sink_fns:
            break
        sink_fns = new_sinks

    # Deduplicate (fixpoint rounds can re-report the same line).
    seen: set[tuple[int, str]] = set()
    unique: list[Finding] = []
    for f in sorted(findings, key=lambda f: f.line):
        key = (f.line, f.message)
        if key not in seen:
            seen.add(key)
            unique.append(f)
    return unique


def collect_sources(roots: list[str]) -> list[str]:
    out: list[str] = []
    for root in roots:
        if os.path.isfile(root):
            out.append(root)
            continue
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = sorted(d for d in dirnames if not d.startswith("."))
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTENSIONS):
                    out.append(os.path.join(dirpath, name))
    return out


def sources_from_compdb(path: str) -> list[str]:
    """TU list of a compile_commands.json (headers ride along via TUs)."""
    with open(path, encoding="utf-8") as f:
        db = json.load(f)
    files: list[str] = []
    for entry in db:
        src = entry.get("file", "")
        if src.endswith(SOURCE_EXTENSIONS) and os.path.exists(src):
            files.append(src)
    return sorted(set(files))


EXPECT_RE = re.compile(
    r"//\s*bftaint-expect:\s*([a-z0-9-]+(?:\s*,\s*[a-z0-9-]+)*)")


def selftest() -> int:
    """Every tests/lint/taint fixture must trigger exactly its rules."""
    fixture_dir = os.path.join(REPO_ROOT, "tests", "lint", "taint")
    fixtures = collect_sources([fixture_dir])
    if not fixtures:
        print(f"bftaint: no fixtures under {fixture_dir}", file=sys.stderr)
        return 1
    failures = 0
    for path in fixtures:
        with open(path, encoding="utf-8") as f:
            raw = f.read()
        expected: set[str] = set()
        for m in EXPECT_RE.finditer(raw):
            expected.update(r.strip() for r in m.group(1).split(","))
        got = {f.rule for f in analyze_file(path)}
        if got != expected:
            failures += 1
            print(f"selftest FAIL {relpath(path)}: expected "
                  f"{sorted(expected) or '[]'}, got {sorted(got) or '[]'}")
        else:
            print(f"selftest ok   {relpath(path)}: {sorted(got) or 'clean'}")
    if failures:
        print(f"bftaint selftest: {failures} fixture(s) failed")
        return 1
    print(f"bftaint selftest: {len(fixtures)} fixtures ok")
    return 0


def main(argv: list[str]) -> int:
    as_json = False
    compdb: str | None = None
    roots: list[str] = []
    it = iter(argv)
    for arg in it:
        if arg == "--selftest":
            return selftest()
        if arg == "--json":
            as_json = True
        elif arg == "--compdb":
            compdb = next(it, None)
            if compdb is None:
                print("bftaint: --compdb needs a path", file=sys.stderr)
                return 2
        else:
            roots.append(arg)

    if compdb is not None:
        files = sources_from_compdb(compdb)
    else:
        files = collect_sources(roots or [os.path.join(REPO_ROOT, "src")])

    findings: list[Finding] = []
    for path in files:
        findings.extend(analyze_file(path))

    if as_json:
        print(json.dumps({"tool": "bftaint",
                          "files": len(files),
                          "findings": [f.to_json() for f in findings]},
                         indent=2))
    else:
        for finding in findings:
            print(finding)
        if findings:
            print(f"bftaint: {len(findings)} finding(s) in {len(files)} files")
        else:
            print(f"bftaint: clean ({len(files)} files)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
