#!/usr/bin/env python3
"""negcompile -- negative-compile harness for the sec type layer.

Each fixture in tests/negative_compile encodes one leak shape that
src/sec/sensitive.h must make a COMPILE ERROR (streaming sensitive text
into a log, converting it back to std::string/string_view, dropping it
into an audit field or span attribute, calling the test declassifier from
production code). For every fixture the harness asserts BOTH directions:

  1. compiled as-is, the fixture MUST FAIL — the type layer rejects the
     leak;
  2. compiled with its control flag (default -DBF_NC_CONTROL, overridable
     per fixture with a `// nc-control-flags: ...` comment), it MUST
     SUCCEED — proving the fixture is otherwise well-formed C++ and the
     failure in (1) is the guarded line, not a typo.

Usage:
  scripts/negcompile.py --compiler g++ [--std c++20] [-I dir]... [fixture...]

Exit status: 0 when every fixture behaves, 1 otherwise.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURE_DIR = os.path.join(REPO_ROOT, "tests", "negative_compile")

CONTROL_RE = re.compile(r"//\s*nc-control-flags:\s*(.+)")


def run_compiler(compiler: str, std: str, includes: list[str], path: str,
                 extra: list[str]) -> tuple[int, str]:
    cmd = [compiler, f"-std={std}", "-fsyntax-only", "-Wall"]
    for inc in includes:
        cmd += ["-I", inc]
    cmd += extra + [path]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    return proc.returncode, proc.stderr


def main(argv: list[str]) -> int:
    compiler = "c++"
    std = "c++20"
    includes: list[str] = []
    fixtures: list[str] = []
    it = iter(argv)
    for arg in it:
        if arg == "--compiler":
            compiler = next(it)
        elif arg == "--std":
            std = next(it)
        elif arg == "-I":
            includes.append(next(it))
        else:
            fixtures.append(arg)
    if not includes:
        includes = [os.path.join(REPO_ROOT, "src")]
    if not fixtures:
        fixtures = sorted(
            os.path.join(FIXTURE_DIR, f)
            for f in os.listdir(FIXTURE_DIR)
            if f.endswith(".cpp"))
    if not fixtures:
        print(f"negcompile: no fixtures under {FIXTURE_DIR}", file=sys.stderr)
        return 1

    failures = 0
    for path in fixtures:
        rel = os.path.relpath(path, REPO_ROOT)
        with open(path, encoding="utf-8") as f:
            source = f.read()
        m = CONTROL_RE.search(source)
        control = m.group(1).split() if m else ["-DBF_NC_CONTROL"]

        code, stderr = run_compiler(compiler, std, includes, path, [])
        if code == 0:
            failures += 1
            print(f"FAIL {rel}: compiled cleanly — the leak shape is "
                  "no longer rejected by the type layer")
            continue

        code, stderr = run_compiler(compiler, std, includes, path, control)
        if code != 0:
            failures += 1
            print(f"FAIL {rel}: control build ({' '.join(control)}) did not "
                  f"compile — fixture is broken beyond the guarded line:\n"
                  f"{stderr.strip()[:2000]}")
            continue

        print(f"ok   {rel}: rejected bare, accepted with "
              f"{' '.join(control)}")

    if failures:
        print(f"negcompile: {failures} fixture(s) failed")
        return 1
    print(f"negcompile: {len(fixtures)} fixtures ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
